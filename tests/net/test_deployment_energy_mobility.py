"""Tests for deployment generators, energy tracking, and mobility."""

import math

import pytest

from repro.geometry import Disk, HexLattice, Vec2
from repro.net import (
    Deployment,
    EnergyConfig,
    EnergyTracker,
    Network,
    PathMobility,
    RandomWalkMobility,
    carve_gaps,
    grid_jitter,
    poisson_disk,
    rt_gap_cells,
    uniform_disk,
)
from repro.sim import RngStreams, Simulator


class TestUniformDisk:
    def test_count_and_bounds(self):
        deployment = uniform_disk(100.0, 500, RngStreams(1))
        assert len(deployment.small_positions) == 500
        assert all(
            p.norm() <= 100.0 + 1e-9 for p in deployment.small_positions
        )

    def test_big_node_at_center_by_default(self):
        deployment = uniform_disk(100.0, 10, RngStreams(1))
        assert deployment.big_position == Vec2(0, 0)

    def test_custom_big_position(self):
        deployment = uniform_disk(
            100.0, 10, RngStreams(1), big_position=Vec2(5, 5)
        )
        assert deployment.big_position == Vec2(5, 5)

    def test_deterministic(self):
        a = uniform_disk(100.0, 50, RngStreams(3))
        b = uniform_disk(100.0, 50, RngStreams(3))
        assert a.small_positions == b.small_positions

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            uniform_disk(100.0, -1, RngStreams(1))

    def test_roughly_uniform_radially(self):
        # With inverse-CDF sampling, ~25% of nodes fall inside r/2 disk.
        deployment = uniform_disk(100.0, 4000, RngStreams(5))
        inner = sum(1 for p in deployment.small_positions if p.norm() < 50.0)
        assert 0.2 < inner / 4000 < 0.3


class TestPoissonDisk:
    def test_mean_count(self):
        # lambda=2 per unit disk over field radius 20 -> mean 800 nodes.
        deployment = poisson_disk(20.0, 2.0, RngStreams(2))
        assert 650 < len(deployment.small_positions) < 950

    def test_zero_density(self):
        deployment = poisson_disk(10.0, 0.0, RngStreams(2))
        assert deployment.small_positions == ()

    def test_negative_density_rejected(self):
        with pytest.raises(ValueError):
            poisson_disk(10.0, -1.0, RngStreams(1))

    def test_density_lambda_estimate(self):
        deployment = poisson_disk(20.0, 3.0, RngStreams(4))
        assert deployment.density_lambda() == pytest.approx(3.0, rel=0.25)


class TestGridJitter:
    def test_coverage_has_no_large_gaps(self):
        deployment = grid_jitter(50.0, spacing=5.0, jitter=1.0, rng_streams=RngStreams(1))
        # Every interior probe point should have a node within ~spacing.
        for probe in [Vec2(0, 0), Vec2(20, 20), Vec2(-30, 10)]:
            nearest = min(
                p.distance_to(probe) for p in deployment.small_positions
            )
            assert nearest < 7.0

    def test_invalid_spacing(self):
        with pytest.raises(ValueError):
            grid_jitter(10.0, spacing=0.0, jitter=0.0, rng_streams=RngStreams(1))


class TestCarveGaps:
    def test_removes_nodes_in_gap(self):
        deployment = grid_jitter(50.0, 5.0, 0.0, RngStreams(1))
        gap = Disk(Vec2(0, 0), 12.0)
        carved = carve_gaps(deployment, [gap])
        assert all(not gap.contains(p) for p in carved.small_positions)
        assert len(carved.small_positions) < len(deployment.small_positions)

    def test_big_node_untouched(self):
        deployment = grid_jitter(50.0, 5.0, 0.0, RngStreams(1))
        carved = carve_gaps(deployment, [Disk(Vec2(0, 0), 12.0)])
        assert carved.big_position == deployment.big_position


class TestRtGapCells:
    def test_dense_deployment_has_no_gaps(self):
        deployment = grid_jitter(60.0, 3.0, 0.5, RngStreams(1))
        lattice = HexLattice(Vec2(0, 0), math.sqrt(3) * 20.0)
        assert rt_gap_cells(deployment, lattice, radius_tolerance=6.0) == []

    def test_carved_gap_detected(self):
        deployment = grid_jitter(60.0, 3.0, 0.0, RngStreams(1))
        lattice = HexLattice(Vec2(0, 0), math.sqrt(3) * 20.0)
        target_il = lattice.point((1, 0))
        carved = carve_gaps(deployment, [Disk(target_il, 10.0)])
        gaps = rt_gap_cells(carved, lattice, radius_tolerance=6.0)
        assert any(g.is_close(target_il, tol=1e-6) for g in gaps)


class TestBuildNetwork:
    def test_big_node_is_id_zero(self):
        deployment = uniform_disk(50.0, 20, RngStreams(1))
        network = deployment.build_network(max_range=30.0)
        assert network.big_id == 0
        assert len(network) == 21

    def test_node_count_property(self):
        deployment = uniform_disk(50.0, 20, RngStreams(1))
        assert deployment.node_count == 21


class TestEnergyTracker:
    def test_drain_and_death(self):
        deaths = []
        tracker = EnergyTracker(
            EnergyConfig(initial=10.0), on_death=deaths.append
        )
        tracker.add_node(1)
        assert not tracker.drain(1, 5.0)
        assert tracker.remaining(1) == 5.0
        assert tracker.drain(1, 5.0)
        assert deaths == [1]
        assert tracker.is_depleted(1)

    def test_drain_dead_node_noop(self):
        tracker = EnergyTracker(EnergyConfig(initial=1.0))
        tracker.add_node(1)
        tracker.drain(1, 2.0)
        assert not tracker.drain(1, 1.0)  # already dead, no second death

    def test_role_rates(self):
        config = EnergyConfig(
            initial=100.0,
            head_drain=10.0,
            candidate_drain=2.0,
            associate_drain=1.0,
        )
        tracker = EnergyTracker(config)
        for node_id in (1, 2, 3):
            tracker.add_node(node_id)
        tracker.drain_role(1, "head")
        tracker.drain_role(2, "candidate")
        tracker.drain_role(3, "associate")
        assert tracker.remaining(1) == 90.0
        assert tracker.remaining(2) == 98.0
        assert tracker.remaining(3) == 99.0

    def test_heads_die_first(self):
        config = EnergyConfig(initial=100.0, head_drain=10.0, associate_drain=1.0)
        tracker = EnergyTracker(config)
        tracker.add_node(1)
        tracker.add_node(2)
        ticks_head = 0
        while not tracker.is_depleted(1):
            tracker.drain_role(1, "head")
            ticks_head += 1
        ticks_assoc = 0
        while not tracker.is_depleted(2):
            tracker.drain_role(2, "associate")
            ticks_assoc += 1
        assert ticks_head * 5 < ticks_assoc

    def test_custom_initial_and_depleted_list(self):
        tracker = EnergyTracker(EnergyConfig(initial=10.0))
        tracker.add_node(1, initial=1.0)
        tracker.add_node(2)
        tracker.drain(1, 1.0)
        assert tracker.depleted_nodes() == [1]

    def test_unknown_node(self):
        tracker = EnergyTracker(EnergyConfig())
        assert tracker.remaining(99) == 0.0
        assert not tracker.drain(99, 1.0)

    def test_remove_node(self):
        tracker = EnergyTracker(EnergyConfig())
        tracker.add_node(1)
        tracker.remove_node(1)
        assert tracker.remaining(1) == 0.0


class TestPathMobility:
    def test_moves_on_schedule(self):
        net = Network(cell_size=10.0)
        node = net.add_node(Vec2(0, 0), 5.0)
        sim = Simulator()
        moves = []
        PathMobility(
            net,
            sim,
            node.node_id,
            [(5.0, Vec2(10, 0)), (10.0, Vec2(20, 0))],
            listener=lambda nid, old, new: moves.append((sim.now, new)),
        ).start()
        sim.run()
        assert moves == [(5.0, Vec2(10, 0)), (10.0, Vec2(20, 0))]
        assert net.node(node.node_id).position == Vec2(20, 0)

    def test_unsorted_waypoints_rejected(self):
        net = Network(cell_size=10.0)
        node = net.add_node(Vec2(0, 0), 5.0)
        mobility = PathMobility(
            net, Simulator(), node.node_id, [(5.0, Vec2(1, 0)), (5.0, Vec2(2, 0))]
        )
        with pytest.raises(ValueError):
            mobility.start()

    def test_dead_node_does_not_move(self):
        net = Network(cell_size=10.0)
        node = net.add_node(Vec2(0, 0), 5.0)
        net.kill_node(node.node_id)
        sim = Simulator()
        PathMobility(net, sim, node.node_id, [(1.0, Vec2(10, 0))]).start()
        sim.run()
        assert net.node(node.node_id).position == Vec2(0, 0)


class TestRandomWalkMobility:
    def test_node_moves_repeatedly(self):
        net = Network(cell_size=10.0)
        node = net.add_node(Vec2(0, 0), 5.0)
        sim = Simulator()
        moves = []
        RandomWalkMobility(
            net,
            sim,
            node.node_id,
            interval=1.0,
            mean_step=2.0,
            rng_streams=RngStreams(1),
            listener=lambda nid, old, new: moves.append(new),
        ).start()
        sim.run(until=10.0)
        assert len(moves) == 10

    def test_respects_max_radius(self):
        net = Network(cell_size=10.0)
        node = net.add_node(Vec2(0, 0), 5.0)
        sim = Simulator()
        RandomWalkMobility(
            net,
            sim,
            node.node_id,
            interval=1.0,
            mean_step=50.0,
            rng_streams=RngStreams(2),
            max_radius=20.0,
        ).start()
        sim.run(until=50.0)
        assert net.node(node.node_id).position.norm() <= 20.0 + 1e-9

    def test_invalid_interval(self):
        net = Network(cell_size=10.0)
        node = net.add_node(Vec2(0, 0), 5.0)
        walk = RandomWalkMobility(
            net, Simulator(), node.node_id, 0.0, 1.0, RngStreams(1)
        )
        with pytest.raises(ValueError):
            walk.start()
