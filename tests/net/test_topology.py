"""Tests for nodes and the spatial-indexed network."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.geometry import Vec2
from repro.net import Network, PhysicalNode

coords = st.floats(
    min_value=-1000.0, max_value=1000.0, allow_nan=False, allow_infinity=False
)


class TestPhysicalNode:
    def test_distance(self):
        a = PhysicalNode(0, Vec2(0, 0), 10.0)
        b = PhysicalNode(1, Vec2(3, 4), 10.0)
        assert a.distance_to(b) == pytest.approx(5.0)

    def test_mutual_range_requires_both(self):
        a = PhysicalNode(0, Vec2(0, 0), 10.0)
        b = PhysicalNode(1, Vec2(8, 0), 5.0)
        assert not a.in_mutual_range(b)
        b.max_range = 9.0
        assert a.in_mutual_range(b)

    def test_can_reach_caps_at_max_range(self):
        node = PhysicalNode(0, Vec2(0, 0), 10.0)
        assert node.can_reach(Vec2(9, 0))
        assert node.can_reach(Vec2(9, 0), tx_range=100.0)
        assert not node.can_reach(Vec2(11, 0), tx_range=100.0)
        assert not node.can_reach(Vec2(9, 0), tx_range=5.0)


class TestNetworkPopulation:
    def test_add_and_lookup(self):
        net = Network(cell_size=10.0)
        node = net.add_node(Vec2(1, 2), 5.0)
        assert net.node(node.node_id).position == Vec2(1, 2)
        assert len(net) == 1

    def test_auto_ids_are_unique(self):
        net = Network(cell_size=10.0)
        ids = {net.add_node(Vec2(i, 0), 5.0).node_id for i in range(10)}
        assert len(ids) == 10

    def test_explicit_id(self):
        net = Network(cell_size=10.0)
        node = net.add_node(Vec2(0, 0), 5.0, node_id=42)
        assert node.node_id == 42
        # Auto ids continue above explicit ones.
        assert net.add_node(Vec2(1, 0), 5.0).node_id == 43

    def test_duplicate_id_rejected(self):
        net = Network(cell_size=10.0)
        net.add_node(Vec2(0, 0), 5.0, node_id=1)
        with pytest.raises(ValueError):
            net.add_node(Vec2(1, 1), 5.0, node_id=1)

    def test_big_node(self):
        net = Network(cell_size=10.0)
        with pytest.raises(LookupError):
            _ = net.big_node
        big = net.add_node(Vec2(0, 0), 5.0, is_big=True)
        assert net.big_node is big
        assert net.big_id == big.node_id

    def test_second_big_node_rejected(self):
        net = Network(cell_size=10.0)
        net.add_node(Vec2(0, 0), 5.0, is_big=True)
        with pytest.raises(ValueError):
            net.add_node(Vec2(1, 1), 5.0, is_big=True)

    def test_kill_and_revive(self):
        net = Network(cell_size=10.0)
        node = net.add_node(Vec2(0, 0), 5.0)
        net.kill_node(node.node_id)
        assert not node.alive
        assert net.alive_count() == 0
        net.revive_node(node.node_id)
        assert net.alive_count() == 1

    def test_remove_node(self):
        net = Network(cell_size=10.0)
        node = net.add_node(Vec2(0, 0), 5.0)
        net.remove_node(node.node_id)
        assert not net.has_node(node.node_id)
        assert net.nodes_within(Vec2(0, 0), 100.0) == []

    def test_invalid_cell_size(self):
        with pytest.raises(ValueError):
            Network(cell_size=0.0)


class TestSpatialQueries:
    def test_nodes_within_radius(self):
        net = Network(cell_size=10.0)
        near = net.add_node(Vec2(1, 0), 5.0)
        net.add_node(Vec2(100, 0), 5.0)
        found = net.nodes_within(Vec2(0, 0), 10.0)
        assert [n.node_id for n in found] == [near.node_id]

    def test_boundary_inclusive(self):
        net = Network(cell_size=10.0)
        node = net.add_node(Vec2(10, 0), 5.0)
        assert node in net.nodes_within(Vec2(0, 0), 10.0)

    def test_dead_nodes_excluded_by_default(self):
        net = Network(cell_size=10.0)
        node = net.add_node(Vec2(0, 0), 5.0)
        net.kill_node(node.node_id)
        assert net.nodes_within(Vec2(0, 0), 5.0) == []
        assert net.nodes_within(Vec2(0, 0), 5.0, alive_only=False) == [node]

    def test_query_spanning_many_grid_cells(self):
        net = Network(cell_size=3.0)
        ids = set()
        for i in range(-5, 6):
            for j in range(-5, 6):
                ids.add(net.add_node(Vec2(i * 4.0, j * 4.0), 5.0).node_id)
        found = {n.node_id for n in net.nodes_within(Vec2(0, 0), 100.0)}
        assert found == ids

    def test_move_node_updates_index(self):
        net = Network(cell_size=5.0)
        node = net.add_node(Vec2(0, 0), 5.0)
        net.move_node(node.node_id, Vec2(50, 50))
        assert net.nodes_within(Vec2(0, 0), 5.0) == []
        assert net.nodes_within(Vec2(50, 50), 5.0) == [node]

    def test_nearest_node(self):
        net = Network(cell_size=10.0)
        net.add_node(Vec2(5, 0), 5.0)
        nearest = net.add_node(Vec2(2, 0), 5.0)
        assert net.nearest_node(Vec2(0, 0), 10.0) is nearest

    def test_nearest_node_exclusion(self):
        net = Network(cell_size=10.0)
        a = net.add_node(Vec2(2, 0), 5.0)
        b = net.add_node(Vec2(5, 0), 5.0)
        found = net.nearest_node(Vec2(0, 0), 10.0, exclude=[a.node_id])
        assert found is b

    def test_nearest_node_none(self):
        net = Network(cell_size=10.0)
        assert net.nearest_node(Vec2(0, 0), 10.0) is None

    @given(st.lists(st.tuples(coords, coords), min_size=1, max_size=40))
    def test_matches_bruteforce(self, points):
        net = Network(cell_size=37.0)
        nodes = [net.add_node(Vec2(x, y), 5.0) for x, y in points]
        center = Vec2(13.0, -7.0)
        radius = 250.0
        expected = {
            n.node_id
            for n in nodes
            if n.position.distance_to(center) <= radius + 1e-9
        }
        found = {n.node_id for n in net.nodes_within(center, radius)}
        assert found == expected


class TestConnectivity:
    def build_chain(self, spacing, max_range):
        net = Network(cell_size=max_range)
        ids = []
        for i in range(5):
            node = net.add_node(
                Vec2(i * spacing, 0), max_range, is_big=(i == 0)
            )
            ids.append(node.node_id)
        return net, ids

    def test_chain_connected(self):
        net, ids = self.build_chain(spacing=5.0, max_range=6.0)
        reachable = net.connected_to(ids[0])
        assert reachable == set(ids)

    def test_chain_broken_by_distance(self):
        net, ids = self.build_chain(spacing=10.0, max_range=6.0)
        assert net.connected_to(ids[0]) == {ids[0]}

    def test_chain_broken_by_death(self):
        net, ids = self.build_chain(spacing=5.0, max_range=6.0)
        net.kill_node(ids[2])
        reachable = net.connected_to(ids[0])
        assert reachable == {ids[0], ids[1]}

    def test_is_connected_to_big(self):
        net, ids = self.build_chain(spacing=5.0, max_range=6.0)
        assert net.is_connected_to_big(ids[4])
        net.kill_node(ids[1])
        assert not net.is_connected_to_big(ids[4])

    def test_dead_source_unreachable(self):
        net, ids = self.build_chain(spacing=5.0, max_range=6.0)
        net.kill_node(ids[0])
        assert net.connected_to(ids[0]) == set()

    def test_physical_neighbors_mutual(self):
        net = Network(cell_size=10.0)
        a = net.add_node(Vec2(0, 0), 10.0)
        b = net.add_node(Vec2(8, 0), 5.0)  # hears a, but a can't hear b
        assert net.physical_neighbors(a.node_id) == []
        assert net.physical_neighbors(b.node_id) == []
