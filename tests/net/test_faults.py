"""Tests for the adversarial channel fault model and its radio wiring."""

import pytest

from repro.geometry import Vec2
from repro.net import (
    ChannelFaultConfig,
    ChannelFaultModel,
    GilbertElliottConfig,
    JamWindow,
    Network,
    Radio,
)
from repro.sim import RngStreams, Simulator, Tracer


def make_net(positions, max_range=50.0):
    net = Network(cell_size=max_range)
    nodes = [net.add_node(Vec2(*p), max_range) for p in positions]
    return net, nodes


def broadcast_deliveries(radio, sim, sender, receivers, payload="x"):
    """Run one broadcast to completion; returns [(receiver_id, payload)]."""
    received = []
    for node in receivers:
        radio.register(
            node.node_id,
            lambda p, s, nid=node.node_id: received.append((nid, p)),
        )
    radio.broadcast(sender.node_id, payload, tx_range=200.0)
    sim.run()
    return received


class TestDegenerateBernoulli:
    def test_matches_legacy_broadcast_loss_draw_for_draw(self):
        """`broadcast_loss=p` and `bernoulli_loss=p` are the same channel."""
        positions = [(0, 0)] + [(5 * i, 3 * i) for i in range(1, 9)]
        outcomes = []
        for build in ("legacy", "model"):
            net, nodes = make_net(positions)
            sim = Simulator()
            if build == "legacy":
                radio = Radio(
                    net, sim, rng=RngStreams(5), broadcast_loss=0.5
                )
            else:
                radio = Radio(
                    net,
                    sim,
                    faults=ChannelFaultConfig(bernoulli_loss=0.5).build(
                        RngStreams(5)
                    ),
                )
            outcomes.append(
                sorted(broadcast_deliveries(radio, sim, nodes[0], nodes[1:]))
            )
        assert outcomes[0] == outcomes[1]
        assert 0 < len(outcomes[0]) < 8  # the loss actually bit

    def test_is_degenerate_property(self):
        model = ChannelFaultModel(RngStreams(1), bernoulli_loss=0.1)
        assert model.is_degenerate_bernoulli
        model.add_jam_window(
            JamWindow(start=0.0, end=1.0, center=Vec2(0, 0), radius=1.0)
        )
        assert not model.is_degenerate_bernoulli


class TestGilbertElliott:
    def test_stationary_loss(self):
        ge = GilbertElliottConfig(
            p_enter_burst=0.02, p_exit_burst=0.3, loss_bad=0.8
        )
        assert ge.stationary_loss() == pytest.approx(
            0.8 * 0.02 / 0.32
        )
        quiet = GilbertElliottConfig(
            p_enter_burst=0.0, p_exit_burst=0.0, loss_good=0.25
        )
        assert quiet.stationary_loss() == 0.25

    def test_deterministic_alternation(self):
        """p_enter = p_exit = 1 flips state every delivery: the drop
        pattern is exactly good, bad, good, bad, ..."""
        model = ChannelFaultModel(
            RngStreams(3),
            gilbert_elliott=GilbertElliottConfig(
                p_enter_burst=1.0, p_exit_burst=1.0
            ),
        )
        a, b = Vec2(0, 0), Vec2(1, 0)
        fates = [model.drop_broadcast(0.0, a, b) for _ in range(6)]
        assert fates == [False, True, False, True, False, True]
        assert model.loss_drops == 3

    def test_losses_cluster_in_bursts(self):
        """At matched average loss, the bursty chain produces longer
        loss runs than the memoryless channel."""

        def max_run(model, n=4000):
            a, b = Vec2(0, 0), Vec2(1, 0)
            longest = run = 0
            for _ in range(n):
                if model.drop_broadcast(0.0, a, b):
                    run += 1
                    longest = max(longest, run)
                else:
                    run = 0
            return longest

        bursty = ChannelFaultModel(
            RngStreams(9),
            gilbert_elliott=GilbertElliottConfig(
                p_enter_burst=0.01, p_exit_burst=0.1
            ),
        )
        memoryless = ChannelFaultModel(RngStreams(9), bernoulli_loss=0.09)
        assert max_run(bursty) > max_run(memoryless)


class TestJamWindows:
    def test_drops_inside_window_and_expires(self):
        model = ChannelFaultModel(RngStreams(1))
        model.add_jam_window(
            JamWindow(start=10.0, end=20.0, center=Vec2(0, 0), radius=50.0)
        )
        inside, outside = Vec2(10, 0), Vec2(500, 0)
        assert not model.drop_broadcast(5.0, inside, inside)
        assert model.drop_broadcast(15.0, inside, outside)  # sender jammed
        assert model.drop_broadcast(15.0, outside, inside)  # receiver jammed
        assert not model.drop_broadcast(15.0, outside, outside)
        assert not model.drop_broadcast(20.0, inside, inside)  # end-exclusive
        assert model.jam_drops == 2

    def test_jam_consumes_no_randomness(self):
        """Jam drops must not perturb the loss stream: the post-jam drop
        pattern equals an un-jammed run's pattern."""
        a, b = Vec2(0, 0), Vec2(1, 0)

        def pattern(jammed):
            model = ChannelFaultModel(RngStreams(7), bernoulli_loss=0.4)
            if jammed:
                model.add_jam_window(
                    JamWindow(
                        start=0.0, end=1.0, center=Vec2(0, 0), radius=10.0
                    )
                )
                for _ in range(5):
                    assert model.drop_broadcast(0.5, a, b)
            return [model.drop_broadcast(2.0, a, b) for _ in range(40)]

        assert pattern(jammed=True) == pattern(jammed=False)

    def test_expired_windows_pruned_on_add(self):
        model = ChannelFaultModel(RngStreams(1))
        model.add_jam_window(
            JamWindow(start=0.0, end=10.0, center=Vec2(0, 0), radius=1.0)
        )
        model.add_jam_window(
            JamWindow(start=50.0, end=60.0, center=Vec2(0, 0), radius=1.0)
        )
        assert len(model.jam_windows) == 1
        assert model.jam_windows[0].start == 50.0

    def test_rejects_degenerate_window(self):
        with pytest.raises(ValueError):
            JamWindow(start=5.0, end=5.0, center=Vec2(0, 0), radius=1.0)
        with pytest.raises(ValueError):
            JamWindow(start=0.0, end=5.0, center=Vec2(0, 0), radius=0.0)


class TestLatencyJitterAndDuplication:
    def test_broadcast_jitter_within_bounds(self):
        net, nodes = make_net([(0, 0), (10, 0)])
        sim = Simulator()
        radio = Radio(
            net,
            sim,
            faults=ChannelFaultConfig(latency_jitter=0.5).build(RngStreams(4)),
        )
        arrivals = []
        radio.register(nodes[1].node_id, lambda p, s: arrivals.append(sim.now))
        latencies = []
        for _ in range(30):
            sim_now = sim.now
            radio.broadcast(nodes[0].node_id, "x", tx_range=50.0)
            sim.run()
            latencies.append(arrivals[-1] - sim_now)
        assert all(1.0 <= lat <= 1.5 for lat in latencies)
        assert len({round(lat, 9) for lat in latencies}) > 1  # jitter varied

    def test_unicast_jitter_but_reliable(self):
        """Unicast never drops under a lossy model, but jitters."""
        net, nodes = make_net([(0, 0), (10, 0)])
        sim = Simulator()
        radio = Radio(
            net,
            sim,
            faults=ChannelFaultConfig(
                bernoulli_loss=0.9, latency_jitter=0.5
            ).build(RngStreams(4)),
        )
        arrivals = []
        radio.register(nodes[1].node_id, lambda p, s: arrivals.append(sim.now))
        for i in range(50):
            start = sim.now
            assert radio.unicast(nodes[0].node_id, nodes[1].node_id, i)
            sim.run()
            assert 1.0 <= arrivals[-1] - start <= 1.5
        assert len(arrivals) == 50  # every send delivered despite loss=0.9

    def test_duplication_delivers_twice_counts_once(self):
        net, nodes = make_net([(0, 0), (10, 0)])
        sim = Simulator()
        tracer = Tracer()
        radio = Radio(
            net,
            sim,
            tracer=tracer,
            faults=ChannelFaultConfig(duplicate_prob=1.0).build(RngStreams(4)),
        )
        received = []
        radio.register(nodes[1].node_id, lambda p, s: received.append(p))
        count = radio.broadcast(nodes[0].node_id, "x", tx_range=50.0)
        sim.run()
        assert count == 1  # duplicates don't inflate the return value
        assert received == ["x", "x"]
        assert tracer.count("msg.duplicate") == 1
        assert radio.faults.duplicates_sent == 1


class TestRadioWiring:
    def test_msg_lost_carries_sender(self):
        net, nodes = make_net([(0, 0), (10, 0)])
        sim = Simulator()
        tracer = Tracer()
        radio = Radio(
            net,
            sim,
            tracer=tracer,
            faults=ChannelFaultConfig(bernoulli_loss=1.0).build(RngStreams(1)),
        )
        radio.register(nodes[1].node_id, lambda p, s: None)
        radio.broadcast(nodes[0].node_id, "x", tx_range=50.0)
        sim.run()
        lost = list(tracer.by_category("msg.lost"))
        assert len(lost) == 1
        assert lost[0].node == nodes[1].node_id
        assert lost[0].detail("sender") == nodes[0].node_id

    def test_faults_and_broadcast_loss_mutually_exclusive(self):
        net, _ = make_net([(0, 0)])
        with pytest.raises(ValueError):
            Radio(
                net,
                Simulator(),
                broadcast_loss=0.1,
                faults=ChannelFaultConfig(bernoulli_loss=0.1).build(
                    RngStreams(1)
                ),
            )

    def test_ensure_fault_model_is_transparent_and_sticky(self):
        net, nodes = make_net([(0, 0), (10, 0)])
        sim = Simulator()
        radio = Radio(net, sim)
        assert radio.faults is None
        model = radio.ensure_fault_model()
        assert radio.ensure_fault_model() is model
        received = []
        radio.register(nodes[1].node_id, lambda p, s: received.append(p))
        radio.broadcast(nodes[0].node_id, "x", tx_range=50.0)
        sim.run()
        assert received == ["x"]  # transparent until windows arrive


class TestChannelFaultConfig:
    def test_from_dict_round_trip(self):
        data = {
            "gilbert_elliott": {
                "p_enter_burst": 0.02,
                "p_exit_burst": 0.3,
                "loss_bad": 0.8,
            },
            "latency_jitter": 0.25,
            "duplicate_prob": 0.01,
            "jam_windows": [
                {
                    "start": 10.0,
                    "end": 20.0,
                    "center": [5.0, -5.0],
                    "radius": 30.0,
                }
            ],
        }
        config = ChannelFaultConfig.from_dict(data)
        assert ChannelFaultConfig.from_dict(config.to_dict()) == config

    def test_rejects_unknown_keys(self):
        with pytest.raises(ValueError, match="unknown channel fault keys"):
            ChannelFaultConfig.from_dict({"bernouli_loss": 0.1})

    def test_rejects_both_loss_models(self):
        with pytest.raises(ValueError, match="not both"):
            ChannelFaultConfig(
                bernoulli_loss=0.1,
                gilbert_elliott=GilbertElliottConfig(
                    p_enter_burst=0.1, p_exit_burst=0.1
                ),
            )

    def test_rejects_bad_probabilities(self):
        with pytest.raises(ValueError):
            ChannelFaultConfig(bernoulli_loss=1.5)
        with pytest.raises(ValueError):
            ChannelFaultConfig(latency_jitter=-1.0)
        with pytest.raises(ValueError):
            GilbertElliottConfig(p_enter_burst=2.0, p_exit_burst=0.1)
