"""Topology-version cache: consistency, invalidation, and index hygiene.

The `Network` caches the ``G_p`` adjacency map, connected components,
and broadcast-candidate lists behind a topology version counter.  These
tests pin down two things: the caches always agree with brute-force
recomputation (under arbitrary churn), and mutation actually
invalidates them.
"""

from collections import deque

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry import Vec2
from repro.net import Network


def brute_neighbors(net, node_id):
    """Reference implementation of physical_neighbors, no index/cache."""
    node = net.node(node_id)
    return {
        other.node_id
        for other in net
        if other.alive
        and other.node_id != node_id
        and node.in_mutual_range(other)
    }


def brute_connected(net, source_id):
    """Reference implementation of connected_to, no index/cache."""
    if not net.node(source_id).alive:
        return frozenset()
    seen = {source_id}
    frontier = deque([source_id])
    while frontier:
        current = frontier.popleft()
        for neighbor_id in brute_neighbors(net, current):
            if neighbor_id not in seen:
                seen.add(neighbor_id)
                frontier.append(neighbor_id)
    return frozenset(seen)


def assert_caches_consistent(net):
    for node in net:
        nid = node.node_id
        cached = {n.node_id for n in net.physical_neighbors(nid)}
        assert cached == brute_neighbors(net, nid), f"neighbors of {nid}"
        assert net.connected_to(nid) == brute_connected(net, nid), (
            f"component of {nid}"
        )
        assert net.connected_to(nid) == net.connected_to(nid, use_cache=False)


class TestTopologyVersion:
    def test_mutations_bump_version(self):
        net = Network(cell_size=10.0)
        v0 = net.topology_version
        node = net.add_node(Vec2(0, 0), 5.0)
        assert net.topology_version > v0
        v1 = net.topology_version
        net.move_node(node.node_id, Vec2(1, 1))
        assert net.topology_version > v1
        v2 = net.topology_version
        net.kill_node(node.node_id)
        assert net.topology_version > v2
        v3 = net.topology_version
        net.revive_node(node.node_id)
        assert net.topology_version > v3
        v4 = net.topology_version
        net.remove_node(node.node_id)
        assert net.topology_version > v4

    def test_noop_mutations_do_not_bump(self):
        net = Network(cell_size=10.0)
        node = net.add_node(Vec2(0, 0), 5.0)
        v = net.topology_version
        net.revive_node(node.node_id)  # already alive
        assert net.topology_version == v
        net.kill_node(node.node_id)
        v = net.topology_version
        net.kill_node(node.node_id)  # already dead
        assert net.topology_version == v
        net.revive_node(node.node_id)
        v = net.topology_version
        net.move_node(node.node_id, Vec2(0, 0))  # same position
        assert net.topology_version == v

    def test_queries_do_not_bump(self):
        net = Network(cell_size=10.0)
        a = net.add_node(Vec2(0, 0), 5.0)
        net.add_node(Vec2(3, 0), 5.0)
        v = net.topology_version
        net.physical_neighbors(a.node_id)
        net.connected_to(a.node_id)
        net.broadcast_candidates(a.node_id, 5.0)
        net.adjacency()
        assert net.topology_version == v

    def test_invalidate_caches(self):
        net = Network(cell_size=10.0)
        net.add_node(Vec2(0, 0), 5.0)
        v = net.topology_version
        net.invalidate_caches()
        assert net.topology_version > v


class TestCacheInvalidation:
    def test_kill_invalidates_connectivity(self):
        net = Network(cell_size=10.0)
        ids = [net.add_node(Vec2(i * 4.0, 0), 5.0).node_id for i in range(3)]
        assert net.connected_to(ids[0]) == set(ids)
        net.kill_node(ids[1])
        assert net.connected_to(ids[0]) == {ids[0]}
        net.revive_node(ids[1])
        assert net.connected_to(ids[0]) == set(ids)

    def test_move_invalidates_neighbors(self):
        net = Network(cell_size=10.0)
        a = net.add_node(Vec2(0, 0), 5.0)
        b = net.add_node(Vec2(3, 0), 5.0)
        assert [n.node_id for n in net.physical_neighbors(a.node_id)] == [
            b.node_id
        ]
        net.move_node(b.node_id, Vec2(100, 0))
        assert net.physical_neighbors(a.node_id) == []

    def test_add_and_remove_invalidate(self):
        net = Network(cell_size=10.0)
        a = net.add_node(Vec2(0, 0), 5.0)
        assert net.physical_neighbors(a.node_id) == []
        b = net.add_node(Vec2(2, 0), 5.0)
        assert [n.node_id for n in net.physical_neighbors(a.node_id)] == [
            b.node_id
        ]
        net.remove_node(b.node_id)
        assert net.physical_neighbors(a.node_id) == []

    def test_component_memo_shared_across_members(self):
        net = Network(cell_size=10.0)
        ids = [net.add_node(Vec2(i * 4.0, 0), 5.0).node_id for i in range(4)]
        first = net.connected_to(ids[0])
        # Same component object answers queries from every member.
        for nid in ids[1:]:
            assert net.connected_to(nid) is first


class TestBroadcastCandidates:
    def test_one_directional_range(self):
        net = Network(cell_size=10.0)
        a = net.add_node(Vec2(0, 0), 10.0)
        b = net.add_node(Vec2(8, 0), 5.0)  # a reaches b, b cannot reach a
        assert [n.node_id for n in net.broadcast_candidates(a.node_id, 10.0)] \
            == [b.node_id]
        assert net.broadcast_candidates(b.node_id, 5.0) == []
        # Mutual-range neighbours stay empty (regression vs physical_neighbors)
        assert net.physical_neighbors(a.node_id) == []

    def test_cache_invalidated_by_kill(self):
        net = Network(cell_size=10.0)
        a = net.add_node(Vec2(0, 0), 10.0)
        b = net.add_node(Vec2(5, 0), 10.0)
        assert len(net.broadcast_candidates(a.node_id, 10.0)) == 1
        net.kill_node(b.node_id)
        assert net.broadcast_candidates(a.node_id, 10.0) == []

    def test_distinct_ranges_cached_separately(self):
        net = Network(cell_size=10.0)
        a = net.add_node(Vec2(0, 0), 20.0)
        net.add_node(Vec2(5, 0), 20.0)
        net.add_node(Vec2(15, 0), 20.0)
        assert len(net.broadcast_candidates(a.node_id, 10.0)) == 1
        assert len(net.broadcast_candidates(a.node_id, 20.0)) == 2


class TestGridBucketHygiene:
    def test_remove_prunes_empty_buckets(self):
        net = Network(cell_size=10.0)
        node = net.add_node(Vec2(0, 0), 5.0)
        assert net.grid_bucket_count == 1
        net.remove_node(node.node_id)
        assert net.grid_bucket_count == 0

    def test_move_prunes_empty_buckets(self):
        net = Network(cell_size=10.0)
        node = net.add_node(Vec2(0, 0), 5.0)
        for i in range(1, 200):
            net.move_node(node.node_id, Vec2(i * 25.0, 0))
            assert net.grid_bucket_count == 1

    def test_bucket_count_bounded_under_churn(self):
        net = Network(cell_size=10.0)
        for cycle in range(50):
            ids = [
                net.add_node(Vec2(cycle * 100.0 + i * 3.0, 0), 5.0).node_id
                for i in range(10)
            ]
            for nid in ids:
                net.remove_node(nid)
        assert net.grid_bucket_count == 0
        # Mixed join/leave with survivors: bounded by the live population.
        keep = [net.add_node(Vec2(i * 50.0, 0), 5.0).node_id for i in range(5)]
        for cycle in range(50):
            nid = net.add_node(Vec2(-cycle * 70.0, 40.0), 5.0).node_id
            net.remove_node(nid)
        assert net.grid_bucket_count <= len(keep)


coords = st.floats(
    min_value=-200.0, max_value=200.0, allow_nan=False, allow_infinity=False
)
ranges = st.floats(min_value=1.0, max_value=80.0)
ops = st.lists(
    st.one_of(
        st.tuples(st.just("add"), coords, coords, ranges),
        st.tuples(st.just("remove"), st.integers(0, 30)),
        st.tuples(st.just("kill"), st.integers(0, 30)),
        st.tuples(st.just("revive"), st.integers(0, 30)),
        st.tuples(st.just("move"), st.integers(0, 30), coords, coords),
    ),
    min_size=1,
    max_size=25,
)


class TestCacheMatchesBruteForce:
    @settings(max_examples=60, deadline=None)
    @given(ops)
    def test_randomized_churn(self, operations):
        """Cached queries equal brute force after every mutation."""
        net = Network(cell_size=37.0)
        live_ids = []
        for op in operations:
            if op[0] == "add":
                _, x, y, max_range = op
                live_ids.append(
                    net.add_node(Vec2(x, y), max_range).node_id
                )
            elif not live_ids:
                continue
            elif op[0] == "remove":
                nid = live_ids.pop(op[1] % len(live_ids))
                net.remove_node(nid)
            elif op[0] == "kill":
                net.kill_node(live_ids[op[1] % len(live_ids)])
            elif op[0] == "revive":
                net.revive_node(live_ids[op[1] % len(live_ids)])
            elif op[0] == "move":
                _, idx, x, y = op
                net.move_node(live_ids[idx % len(live_ids)], Vec2(x, y))
            assert_caches_consistent(net)

    @settings(max_examples=30, deadline=None)
    @given(
        st.lists(st.tuples(coords, coords), min_size=2, max_size=15),
        st.floats(min_value=5.0, max_value=100.0),
    )
    def test_broadcast_candidates_match_bruteforce(self, points, tx_range):
        net = Network(cell_size=13.0)
        nodes = [net.add_node(Vec2(x, y), 50.0) for x, y in points]
        for node in nodes:
            expected = {
                other.node_id
                for other in net
                if other.alive
                and other.node_id != node.node_id
                and node.position.distance_to(other.position)
                <= tx_range + 1e-9
            }
            found = {
                n.node_id
                for n in net.broadcast_candidates(node.node_id, tx_range)
            }
            assert found == expected


class TestAdjacencyView:
    def test_read_only(self):
        net = Network(cell_size=10.0)
        net.add_node(Vec2(0, 0), 5.0)
        adjacency = net.adjacency()
        with pytest.raises(TypeError):
            adjacency[99] = ()

    def test_covers_dead_nodes(self):
        net = Network(cell_size=10.0)
        a = net.add_node(Vec2(0, 0), 5.0)
        b = net.add_node(Vec2(3, 0), 5.0)
        net.kill_node(a.node_id)
        adjacency = net.adjacency()
        # Dead node still listed, with its live neighbours (post-mortem
        # analysis semantics, mirroring physical_neighbors).
        assert adjacency[a.node_id] == (b.node_id,)
        assert adjacency[b.node_id] == ()
