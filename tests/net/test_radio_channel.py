"""Tests for the radio and the channel reservation manager."""

import pytest

from repro.geometry import Vec2
from repro.net import ChannelManager, Network, Radio
from repro.sim import RngStreams, Simulator, Tracer


def make_net(positions, max_range=50.0):
    net = Network(cell_size=max_range)
    nodes = [net.add_node(Vec2(*p), max_range) for p in positions]
    return net, nodes


class TestBroadcast:
    def test_delivers_within_range(self):
        net, nodes = make_net([(0, 0), (10, 0), (100, 0)])
        sim = Simulator()
        radio = Radio(net, sim)
        received = []
        for node in nodes:
            radio.register(
                node.node_id,
                lambda payload, sender, nid=node.node_id: received.append(
                    (nid, payload, sender)
                ),
            )
        count = radio.broadcast(nodes[0].node_id, "hello", tx_range=20.0)
        sim.run()
        assert count == 1
        assert received == [(nodes[1].node_id, "hello", nodes[0].node_id)]

    def test_sender_does_not_hear_itself(self):
        net, nodes = make_net([(0, 0)])
        sim = Simulator()
        radio = Radio(net, sim)
        received = []
        radio.register(nodes[0].node_id, lambda p, s: received.append(p))
        radio.broadcast(nodes[0].node_id, "x", tx_range=20.0)
        sim.run()
        assert received == []

    def test_range_capped_by_max_range(self):
        net, nodes = make_net([(0, 0), (30, 0)], max_range=20.0)
        sim = Simulator()
        radio = Radio(net, sim)
        received = []
        radio.register(nodes[1].node_id, lambda p, s: received.append(p))
        radio.broadcast(nodes[0].node_id, "x", tx_range=100.0)
        sim.run()
        assert received == []

    def test_dead_sender_sends_nothing(self):
        net, nodes = make_net([(0, 0), (10, 0)])
        net.kill_node(nodes[0].node_id)
        sim = Simulator()
        radio = Radio(net, sim)
        assert radio.broadcast(nodes[0].node_id, "x", tx_range=20.0) == 0

    def test_dead_receiver_skipped(self):
        net, nodes = make_net([(0, 0), (10, 0)])
        net.kill_node(nodes[1].node_id)
        sim = Simulator()
        radio = Radio(net, sim)
        received = []
        radio.register(nodes[1].node_id, lambda p, s: received.append(p))
        radio.broadcast(nodes[0].node_id, "x", tx_range=20.0)
        sim.run()
        assert received == []

    def test_receiver_dying_in_flight_misses_message(self):
        net, nodes = make_net([(0, 0), (10, 0)])
        sim = Simulator()
        radio = Radio(net, sim)
        received = []
        radio.register(nodes[1].node_id, lambda p, s: received.append(p))
        radio.broadcast(nodes[0].node_id, "x", tx_range=20.0)
        net.kill_node(nodes[1].node_id)  # before delivery event fires
        sim.run()
        assert received == []

    def test_delivery_takes_hop_latency(self):
        net, nodes = make_net([(0, 0), (10, 0)])
        sim = Simulator()
        radio = Radio(net, sim, hop_latency=2.5)
        times = []
        radio.register(nodes[1].node_id, lambda p, s: times.append(sim.now))
        radio.broadcast(nodes[0].node_id, "x", tx_range=20.0)
        sim.run()
        assert times == [2.5]

    def test_broadcast_loss(self):
        net, nodes = make_net([(0, 0)] + [(10, i * 0.1) for i in range(200)])
        sim = Simulator()
        radio = Radio(
            net,
            sim,
            rng=RngStreams(7),
            broadcast_loss=0.5,
        )
        received = []
        for node in nodes[1:]:
            radio.register(node.node_id, lambda p, s: received.append(p))
        radio.broadcast(nodes[0].node_id, "x", tx_range=50.0)
        sim.run()
        # Roughly half should arrive; loose bounds to avoid flakiness.
        assert 60 <= len(received) <= 140

    def test_invalid_loss_rejected(self):
        net, _ = make_net([(0, 0)])
        with pytest.raises(ValueError):
            Radio(net, Simulator(), broadcast_loss=1.0)

    def test_message_counters(self):
        net, nodes = make_net([(0, 0), (10, 0)])
        sim = Simulator()
        tracer = Tracer()
        radio = Radio(net, sim, tracer=tracer)
        radio.register(nodes[1].node_id, lambda p, s: None)
        radio.broadcast(nodes[0].node_id, "x", tx_range=20.0)
        sim.run()
        assert tracer.count("msg.broadcast") == 1
        assert tracer.count("msg.deliver") == 1


class TestUnicast:
    def test_reliable_within_range(self):
        net, nodes = make_net([(0, 0), (10, 0)])
        sim = Simulator()
        radio = Radio(net, sim)
        received = []
        radio.register(nodes[1].node_id, lambda p, s: received.append((p, s)))
        ok = radio.unicast(nodes[0].node_id, nodes[1].node_id, "msg")
        sim.run()
        assert ok
        assert received == [("msg", nodes[0].node_id)]

    def test_out_of_range_fails(self):
        net, nodes = make_net([(0, 0), (100, 0)], max_range=20.0)
        sim = Simulator()
        radio = Radio(net, sim)
        assert not radio.unicast(nodes[0].node_id, nodes[1].node_id, "x")

    def test_dead_destination_fails(self):
        net, nodes = make_net([(0, 0), (10, 0)])
        net.kill_node(nodes[1].node_id)
        radio = Radio(net, Simulator())
        assert not radio.unicast(nodes[0].node_id, nodes[1].node_id, "x")

    def test_unknown_destination_fails(self):
        net, nodes = make_net([(0, 0)])
        radio = Radio(net, Simulator())
        assert not radio.unicast(nodes[0].node_id, 999, "x")

    def test_unregistered_receiver_drops_silently(self):
        net, nodes = make_net([(0, 0), (10, 0)])
        sim = Simulator()
        radio = Radio(net, sim)
        assert radio.unicast(nodes[0].node_id, nodes[1].node_id, "x")
        sim.run()  # must not raise


class TestChannelManager:
    def test_grant_when_free(self):
        sim = Simulator()
        manager = ChannelManager(sim)
        granted = []
        manager.request(1, Vec2(0, 0), 10.0, lambda lease: granted.append(1))
        sim.run()
        assert granted == [1]

    def test_conflicting_request_waits(self):
        sim = Simulator()
        manager = ChannelManager(sim)
        order = []
        first_leases = []

        def on_first(lease):
            order.append("first")
            first_leases.append(lease)

        manager.request(1, Vec2(0, 0), 10.0, on_first)
        manager.request(2, Vec2(5, 0), 10.0, lambda l: order.append("second"))
        sim.run()
        assert order == ["first"]
        manager.release(first_leases[0])
        sim.run()
        assert order == ["first", "second"]

    def test_non_conflicting_requests_run_concurrently(self):
        sim = Simulator()
        manager = ChannelManager(sim)
        granted = []
        manager.request(1, Vec2(0, 0), 10.0, lambda l: granted.append(1))
        manager.request(2, Vec2(100, 0), 10.0, lambda l: granted.append(2))
        sim.run()
        assert sorted(granted) == [1, 2]
        assert manager.active_count == 2

    def test_cancel_before_grant(self):
        sim = Simulator()
        manager = ChannelManager(sim)
        granted = []
        blocker_leases = []
        manager.request(
            1, Vec2(0, 0), 10.0, lambda lease: blocker_leases.append(lease)
        )
        waiting = manager.request(
            2, Vec2(5, 0), 10.0, lambda l: granted.append(2)
        )
        sim.run()
        manager.release(waiting)  # cancel while queued
        manager.release(blocker_leases[0])
        sim.run()
        assert granted == []
        assert manager.active_count == 0

    def test_release_idempotent(self):
        sim = Simulator()
        manager = ChannelManager(sim)
        leases = []
        manager.request(1, Vec2(0, 0), 10.0, leases.append)
        sim.run()
        manager.release(leases[0])
        manager.release(leases[0])
        assert manager.active_count == 0

    def test_fifo_among_conflicting(self):
        sim = Simulator()
        manager = ChannelManager(sim)
        order = []
        leases = {}

        def grab(tag):
            def on_grant(lease):
                order.append(tag)
                leases[tag] = lease

            return on_grant

        manager.request(1, Vec2(0, 0), 10.0, grab("a"))
        manager.request(2, Vec2(1, 0), 10.0, grab("b"))
        manager.request(3, Vec2(2, 0), 10.0, grab("c"))
        sim.run()
        manager.release(leases["a"])
        sim.run()
        manager.release(leases["b"])
        sim.run()
        assert order == ["a", "b", "c"]

    def test_holder_near(self):
        sim = Simulator()
        manager = ChannelManager(sim)
        manager.request(7, Vec2(0, 0), 10.0, lambda l: None)
        sim.run()
        assert manager.holder_near(Vec2(15, 0), 10.0) == 7
        assert manager.holder_near(Vec2(100, 0), 10.0) is None


class _RecordingPlane:
    """Claims every payload; records (time, payload, dest, sender)."""

    def __init__(self, sim):
        self.sim = sim
        self.frames = []

    def claims(self, payload):
        return True

    def on_frame(self, payload, dest_id, sender_id):
        self.frames.append((self.sim.now, payload, dest_id, sender_id))


class TestSendDataBatch:
    """send_data_batch == send_data item-by-item, draw-for-draw."""

    POSITIONS = [(0, 0), (10, 0), (20, 10), (120, 0)]

    def _rig(self, seed=11, kill=None):
        from repro.net import ChannelFaultModel
        from repro.sim import RngStreams

        net, nodes = make_net(self.POSITIONS)
        sim = Simulator()
        rng = RngStreams(seed)
        faults = ChannelFaultModel(
            rng, bernoulli_loss=0.3, latency_jitter=0.4
        )
        radio = Radio(net, sim, rng=rng, faults=faults)
        plane = _RecordingPlane(sim)
        radio.data_plane = plane
        if kill is not None:
            net.kill_node(nodes[kill].node_id)
        return net, nodes, sim, radio, plane

    def _items(self, nodes):
        # Mix of reachable, out-of-range, and repeated destinations.
        return [
            (nodes[1].node_id, "f0"),
            (nodes[3].node_id, "f1"),  # out of range
            (nodes[2].node_id, "f2"),
            (nodes[1].node_id, "f3"),
            (nodes[2].node_id, "f4"),
        ]

    def test_matches_sequential_send_data(self):
        _, nodes_a, sim_a, radio_a, plane_a = self._rig()
        _, nodes_b, sim_b, radio_b, plane_b = self._rig()
        sender = nodes_a[0].node_id
        seq = [
            radio_a.send_data(sender, dest, payload)
            for dest, payload in self._items(nodes_a)
        ]
        batch = radio_b.send_data_batch(sender, self._items(nodes_b))
        assert batch == seq
        assert "dropped" in seq or "sent" in seq  # channel exercised
        assert "unreachable" in seq
        sim_a.run()
        sim_b.run()
        assert plane_b.frames == plane_a.frames  # same payloads, same times

    def test_dead_sender_short_circuits(self):
        _, nodes, _, radio, plane = self._rig(kill=0)
        outcomes = radio.send_data_batch(
            nodes[0].node_id, self._items(nodes)
        )
        assert outcomes == ["sender_dead"] * 5
        assert plane.frames == []

    def test_dead_destination_unreachable(self):
        _, nodes, sim, radio, _ = self._rig(kill=1)
        outcomes = radio.send_data_batch(
            nodes[0].node_id, [(nodes[1].node_id, "x")]
        )
        assert outcomes == ["unreachable"]
