"""Differential suite: vectorized G_p vs an object-graph reference.

The scale refactor rebuilt ``nodes_within`` and the adjacency
construction on numpy arrays mirrored behind the spatial grid.  These
properties drive a randomized churn workload (add / kill / revive /
move) and assert the array path agrees with a brute-force object-graph
reference *exactly* — same membership, same canonical id order, same
epsilon behavior — plus the ``nearest_node`` deterministic tie-break
fix that rode along.
"""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry import Vec2
from repro.net import Network

coords = st.floats(
    min_value=-120.0, max_value=120.0, allow_nan=False, allow_infinity=False
)
radii = st.floats(min_value=0.0, max_value=60.0, allow_nan=False)


def brute_within(net, center, radius, alive_only=True):
    r_sq = radius * radius + 1e-9
    return sorted(
        node.node_id
        for node in net
        if (node.alive or not alive_only)
        and node.position.distance_sq_to(center) <= r_sq
    )


def brute_adjacency(net):
    nodes = list(net)
    adjacency = {}
    for a in nodes:
        adjacency[a.node_id] = tuple(
            sorted(
                b.node_id
                for b in nodes
                if b.node_id != a.node_id
                and b.alive
                and a.in_mutual_range(b)
            )
        )
    return adjacency


def brute_components(net, source_id):
    adjacency = brute_adjacency(net)
    if not net.node(source_id).alive:
        return frozenset()
    seen = {source_id}
    frontier = [source_id]
    while frontier:
        current = frontier.pop()
        for neighbor in adjacency[current]:
            if neighbor not in seen:
                seen.add(neighbor)
                frontier.append(neighbor)
    return frozenset(seen)


@st.composite
def churned_network(draw):
    """A network taken through a random add/kill/revive/move history."""
    cell = draw(st.sampled_from([7.0, 20.0, 50.0]))
    net = Network(cell_size=cell)
    n = draw(st.integers(min_value=1, max_value=25))
    for _ in range(n):
        net.add_node(
            Vec2(draw(coords), draw(coords)),
            draw(st.floats(min_value=0.0, max_value=60.0)),
        )
    ids = net.node_ids()
    for _ in range(draw(st.integers(0, 15))):
        action = draw(st.sampled_from(["kill", "revive", "move", "add"]))
        if action == "kill":
            net.kill_node(draw(st.sampled_from(ids)))
        elif action == "revive":
            net.revive_node(draw(st.sampled_from(ids)))
        elif action == "move":
            net.move_node(
                draw(st.sampled_from(ids)), Vec2(draw(coords), draw(coords))
            )
        else:
            node = net.add_node(
                Vec2(draw(coords), draw(coords)),
                draw(st.floats(min_value=0.0, max_value=60.0)),
            )
            ids.append(node.node_id)
    return net


class TestVectorizedMatchesReference:
    @given(churned_network(), coords, coords, radii, st.booleans())
    @settings(max_examples=150, deadline=None)
    def test_nodes_within_exact(self, net, cx, cy, radius, alive_only):
        center = Vec2(cx, cy)
        got = [
            n.node_id for n in net.nodes_within(center, radius, alive_only)
        ]
        expected = brute_within(net, center, radius, alive_only)
        assert got == expected  # membership AND canonical id order

    @given(churned_network())
    @settings(max_examples=100, deadline=None)
    def test_adjacency_exact(self, net):
        assert dict(net.adjacency()) == brute_adjacency(net)

    @given(churned_network())
    @settings(max_examples=60, deadline=None)
    def test_connected_components_exact(self, net):
        for node_id in net.node_ids():
            assert net.connected_to(node_id) == brute_components(net, node_id)
            assert net.connected_to(node_id) == net.connected_to(
                node_id, use_cache=False
            )

    @given(churned_network())
    @settings(max_examples=60, deadline=None)
    def test_adjacency_small_cell_fallback_agrees(self, net):
        """A cell size below max_range forces the per-node fallback;
        both construction paths produce identical adjacency."""
        small = Network(cell_size=3.0)
        for node in net:
            small.add_node(
                node.position, node.max_range, node_id=node.node_id
            )
            if not node.alive:
                small.kill_node(node.node_id)
        assert dict(small.adjacency()) == brute_adjacency(net)


class TestNearestNodeTieBreak:
    def test_ties_break_by_node_id(self):
        net = Network(cell_size=10.0)
        # Four nodes at identical distance 5 from the origin, inserted
        # in descending-id-unfriendly order across distinct buckets.
        for node_id, position in [
            (7, Vec2(0.0, 5.0)),
            (3, Vec2(5.0, 0.0)),
            (9, Vec2(-5.0, 0.0)),
            (5, Vec2(0.0, -5.0)),
        ]:
            net.add_node(position, 20.0, node_id=node_id)
        found = net.nearest_node(Vec2(0.0, 0.0), 10.0)
        assert found is not None and found.node_id == 3
        found = net.nearest_node(Vec2(0.0, 0.0), 10.0, exclude=[3])
        assert found is not None and found.node_id == 5

    def test_strictly_nearer_beats_smaller_id(self):
        net = Network(cell_size=10.0)
        net.add_node(Vec2(4.0, 0.0), 20.0, node_id=1)
        net.add_node(Vec2(3.0, 0.0), 20.0, node_id=8)
        found = net.nearest_node(Vec2(0.0, 0.0), 10.0)
        assert found is not None and found.node_id == 8

    @given(churned_network(), coords, coords, radii)
    @settings(max_examples=100, deadline=None)
    def test_matches_reference_argmin(self, net, cx, cy, radius):
        center = Vec2(cx, cy)
        found = net.nearest_node(center, radius)
        candidates = brute_within(net, center, radius, alive_only=True)
        if not candidates:
            assert found is None
        else:
            best = min(
                candidates,
                key=lambda i: (
                    net.node(i).position.distance_sq_to(center),
                    i,
                ),
            )
            assert found is not None and found.node_id == best


class TestBulkAdd:
    def test_bulk_matches_incremental(self):
        positions = [
            Vec2(math.cos(i) * 40.0, math.sin(i * 1.7) * 40.0)
            for i in range(50)
        ]
        bulk = Network(cell_size=10.0)
        bulk.add_node(Vec2(0, 0), 15.0, is_big=True)
        bulk.add_nodes(positions, 15.0)
        incremental = Network(cell_size=10.0)
        incremental.add_node(Vec2(0, 0), 15.0, is_big=True)
        for p in positions:
            incremental.add_node(p, 15.0)
        assert bulk.node_ids() == incremental.node_ids()
        assert dict(bulk.adjacency()) == dict(incremental.adjacency())
        # Bulk rows stay valid through subsequent churn.
        bulk.kill_node(10)
        incremental.kill_node(10)
        bulk.move_node(11, Vec2(1.0, 1.0))
        incremental.move_node(11, Vec2(1.0, 1.0))
        assert dict(bulk.adjacency()) == dict(incremental.adjacency())
