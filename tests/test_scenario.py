"""Tests for the declarative scenario runner."""

import json

import pytest

from repro.scenario import Scenario, ScenarioResult, run_scenario


def base_scenario(**overrides):
    data = {
        "seed": 5,
        "config": {"ideal_radius": 100.0, "radius_tolerance": 25.0},
        "deployment": {
            "kind": "uniform",
            "field_radius": 230.0,
            "n_nodes": 550,
        },
        "perturbations": [],
        "settle_window": 100.0,
    }
    data.update(overrides)
    return data


class TestParsing:
    def test_from_dict_defaults(self):
        scenario = Scenario.from_dict(base_scenario())
        assert scenario.seed == 5
        assert scenario.config.ideal_radius == 100.0
        assert not scenario.mobile

    def test_from_json(self):
        scenario = Scenario.from_json(json.dumps(base_scenario()))
        assert scenario.deployment_spec["n_nodes"] == 550

    def test_missing_perturbation_fields(self):
        with pytest.raises(ValueError):
            Scenario.from_dict(
                base_scenario(perturbations=[{"kind": "kill_head"}])
            )

    def test_channel_block_parsed(self):
        scenario = Scenario.from_dict(
            base_scenario(
                channel={"bernoulli_loss": 0.05, "latency_jitter": 0.2}
            )
        )
        assert scenario.channel is not None
        assert scenario.channel.bernoulli_loss == 0.05
        assert Scenario.from_dict(base_scenario()).channel is None

    def test_channel_block_typo_rejected_at_parse_time(self):
        with pytest.raises(ValueError, match="unknown channel fault keys"):
            Scenario.from_dict(base_scenario(channel={"bernouli_loss": 0.1}))

    def test_jam_and_churn_required_fields(self):
        with pytest.raises(ValueError, match="jam_region"):
            Scenario.from_dict(
                base_scenario(
                    perturbations=[
                        {"kind": "jam_region", "at": 1.0, "center": [0, 0]}
                    ]
                )
            )
        with pytest.raises(ValueError, match="churn"):
            Scenario.from_dict(
                base_scenario(perturbations=[{"kind": "churn", "at": 1.0}])
            )

    def test_unknown_deployment_kind(self):
        scenario = Scenario.from_dict(
            base_scenario(deployment={"kind": "nope", "field_radius": 1.0})
        )
        with pytest.raises(ValueError):
            scenario.build_deployment()

    def test_grid_deployment(self):
        scenario = Scenario.from_dict(
            base_scenario(
                deployment={
                    "kind": "grid",
                    "field_radius": 100.0,
                    "spacing": 20.0,
                    "jitter": 3.0,
                }
            )
        )
        deployment = scenario.build_deployment()
        assert deployment.node_count > 10

    def test_poisson_deployment(self):
        scenario = Scenario.from_dict(
            base_scenario(
                deployment={
                    "kind": "poisson",
                    "field_radius": 50.0,
                    "density_lambda": 0.2,
                }
            )
        )
        deployment = scenario.build_deployment()
        assert deployment.node_count >= 1


class TestExecution:
    def test_plain_configuration(self):
        result = run_scenario(Scenario.from_dict(base_scenario()))
        assert result.ok()
        assert result.final_cells >= 5
        assert result.perturbation_log == []

    def test_perturbation_sequence(self):
        scenario = Scenario.from_dict(
            base_scenario(
                perturbations=[
                    {"kind": "kill_head", "at": 300.0},
                    {"kind": "join", "at": 900.0, "position": [30.0, 30.0]},
                ]
            )
        )
        result = run_scenario(scenario)
        assert result.ok()
        assert [p["kind"] for p in result.perturbation_log] == [
            "kill_head",
            "join",
        ]
        for entry in result.perturbation_log:
            assert entry["healing_time"] >= 0.0

    def test_lossy_channel_with_jam_and_churn(self):
        scenario = Scenario.from_dict(
            base_scenario(
                deployment={
                    "kind": "uniform",
                    "field_radius": 130.0,
                    "n_nodes": 160,
                },
                channel={"bernoulli_loss": 0.05},
                perturbations=[
                    {
                        "kind": "jam_region",
                        "at": 300.0,
                        "center": [0.0, 60.0],
                        "radius": 40.0,
                        "duration": 50.0,
                    },
                    {
                        "kind": "churn",
                        "at": 500.0,
                        "duration": 150.0,
                        "leave_rate": 0.005,
                        "join_rate": 0.003,
                    },
                ],
            )
        )
        result = run_scenario(scenario)
        assert result.ok()
        assert [p["kind"] for p in result.perturbation_log] == [
            "jam_region",
            "churn",
        ]
        assert "jammed disk" in result.perturbation_log[0]["detail"]
        assert "churn events" in result.perturbation_log[1]["detail"]

    def test_unknown_perturbation_kind_rejected_at_parse_time(self):
        # A typo'd kind must fail before the expensive configuration
        # phase, not mid-run.
        with pytest.raises(ValueError, match="unknown perturbation kind"):
            Scenario.from_dict(
                base_scenario(perturbations=[{"kind": "meteor", "at": 10.0}])
            )

    def test_kill_head_without_candidate_is_a_clear_error(self):
        from types import SimpleNamespace

        from repro.scenario import _non_big_head

        big_only = SimpleNamespace(
            snapshot=lambda: SimpleNamespace(
                heads={0: SimpleNamespace(node_id=0, is_big=True)}
            )
        )
        with pytest.raises(ValueError, match="needs a non-big head"):
            _non_big_head(big_only, "kill_head")

    def test_mobile_scenario_moves_big(self):
        scenario = Scenario.from_dict(
            base_scenario(
                mobile=True,
                perturbations=[
                    {"kind": "move_big", "at": 300.0, "to": [173.2, 0.0]}
                ],
            )
        )
        result = run_scenario(scenario)
        assert result.perturbation_log[0]["kind"] == "move_big"
        assert result.final_cells >= 5
