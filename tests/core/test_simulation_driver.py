"""Regression tests for the `Gs3Simulation` driver loop."""

from types import SimpleNamespace

from repro.core import GS3Config, Gs3Simulation
from repro.geometry import Vec2
from repro.net import Network


class _DrainedSim:
    """A simulator whose queue empties mid-window."""

    pending_events = 0

    def __init__(self):
        self.now = 0.0

    def run_for(self, duration):
        self.now += duration / 2.0

    def next_event_time(self):
        return None


class _ZeroTracer:
    """The last structure change happened at exactly t=0.0."""

    last_time_by_category = {}

    def last_time(self, *categories):
        return 0.0


def _fake_driver():
    """A Gs3Simulation shell around the stub sim/tracer (no nodes)."""
    fake = Gs3Simulation.__new__(Gs3Simulation)
    fake.runtime = SimpleNamespace(sim=_DrainedSim(), tracer=_ZeroTracer())
    fake._started = True  # start() is a no-op on the stub
    return fake


class TestRunUntilStableZeroInstant:
    def test_queue_empty_branch_returns_zero_instant(self):
        """A convergence instant of 0.0 must not be replaced by sim.now.

        White-box: drives the ``next_event_time() is None`` branch
        directly, where the old ``last_time(...) or sim.now`` discarded
        the falsy float 0.0.
        """
        converged_at = _fake_driver().run_until_stable(window=50.0)
        assert converged_at == 0.0

    def test_stabilize_reports_zero_instant(self):
        """The non-raising companion keeps the same 0.0 contract."""
        report = _fake_driver().stabilize(
            window=50.0, check_invariants=False
        )
        assert report.stable
        assert report.converged_at == 0.0

    def test_big_node_only_network_converges_at_zero(self):
        """End to end: a lone big node organises instantly at t=0."""
        network = Network(cell_size=100.0)
        network.add_node(Vec2(0, 0), 200.0, is_big=True)
        sim = Gs3Simulation(network, GS3Config())
        converged_at = sim.run_until_stable(window=50.0)
        assert converged_at == 0.0
