"""Regression tests for the `Gs3Simulation` driver loop."""

from types import SimpleNamespace

from repro.core import GS3Config, Gs3Simulation
from repro.geometry import Vec2
from repro.net import Network


class _DrainedSim:
    """A simulator whose queue empties mid-window."""

    def __init__(self):
        self.now = 0.0

    def run_for(self, duration):
        self.now += duration / 2.0

    def next_event_time(self):
        return None


class _ZeroTracer:
    """The last structure change happened at exactly t=0.0."""

    def last_time(self, *categories):
        return 0.0


class TestRunUntilStableZeroInstant:
    def test_queue_empty_branch_returns_zero_instant(self):
        """A convergence instant of 0.0 must not be replaced by sim.now.

        White-box: drives the ``next_event_time() is None`` branch
        directly, where the old ``last_time(...) or sim.now`` discarded
        the falsy float 0.0.
        """
        fake = SimpleNamespace(
            start=lambda: None,
            runtime=SimpleNamespace(sim=_DrainedSim(), tracer=_ZeroTracer()),
        )
        converged_at = Gs3Simulation.run_until_stable(fake, window=50.0)
        assert converged_at == 0.0

    def test_big_node_only_network_converges_at_zero(self):
        """End to end: a lone big node organises instantly at t=0."""
        network = Network(cell_size=100.0)
        network.add_node(Vec2(0, 0), 200.0, is_big=True)
        sim = Gs3Simulation(network, GS3Config())
        converged_at = sim.run_until_stable(window=50.0)
        assert converged_at == 0.0
