"""Tests for GS3Config validation and derived quantities."""

import math

import pytest

from repro.core import GS3Config


class TestValidation:
    def test_defaults_valid(self):
        GS3Config()

    def test_negative_radius(self):
        with pytest.raises(ValueError):
            GS3Config(ideal_radius=-1.0)

    def test_tolerance_too_large(self):
        with pytest.raises(ValueError):
            GS3Config(ideal_radius=100.0, radius_tolerance=90.0)

    def test_tolerance_zero(self):
        with pytest.raises(ValueError):
            GS3Config(radius_tolerance=0.0)

    def test_collect_window_too_small(self):
        with pytest.raises(ValueError):
            GS3Config(hop_latency=1.0, collect_window=1.5)


class TestDerived:
    def test_lattice_spacing(self):
        cfg = GS3Config(ideal_radius=100.0, radius_tolerance=25.0)
        assert cfg.lattice_spacing == pytest.approx(math.sqrt(3) * 100)

    def test_search_radius(self):
        cfg = GS3Config(ideal_radius=100.0, radius_tolerance=25.0)
        assert cfg.search_radius == pytest.approx(math.sqrt(3) * 100 + 50)

    def test_alpha(self):
        cfg = GS3Config(ideal_radius=100.0, radius_tolerance=25.0)
        assert cfg.alpha == pytest.approx(math.asin(25 / (math.sqrt(3) * 100)))

    def test_max_cell_radius(self):
        cfg = GS3Config(ideal_radius=100.0, radius_tolerance=25.0)
        assert cfg.max_cell_radius == pytest.approx(100 + 50 / math.sqrt(3))

    def test_neighbor_distance_band(self):
        cfg = GS3Config(ideal_radius=100.0, radius_tolerance=25.0)
        assert cfg.neighbor_distance_low == pytest.approx(
            math.sqrt(3) * 100 - 50
        )
        assert cfg.neighbor_distance_high == pytest.approx(
            math.sqrt(3) * 100 + 50
        )

    def test_failure_timeout(self):
        cfg = GS3Config(heartbeat_interval=10.0, failure_timeout_beats=2.5)
        assert cfg.failure_timeout == 25.0

    def test_recommended_max_range_exceeds_search_radius(self):
        cfg = GS3Config()
        assert cfg.recommended_max_range > cfg.search_radius

    def test_frozen(self):
        cfg = GS3Config()
        with pytest.raises(AttributeError):
            cfg.ideal_radius = 5.0
