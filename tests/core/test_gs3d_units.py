"""White-box unit tests for GS3-D message handlers.

These exercise individual protocol branches (parent seek, new-child
announcements, join accept relaying, the sanity-check exchange) on
hand-built miniature networks, without waiting for the conditions to
arise organically in a big simulation.
"""

import math

import pytest

from repro.core import GS3Config, Gs3DynamicNode, NodeStatus
from repro.core.messages import (
    JoinAccept,
    NewChildHead,
    ParentSeek,
    SanityCheckReq,
    SanityCheckValid,
)
from repro.core.runtime import Gs3Runtime
from repro.geometry import Vec2
from repro.net import Network

CFG = GS3Config(ideal_radius=100.0, radius_tolerance=25.0)
SPACING = CFG.lattice_spacing


def build_two_heads():
    """A big-node head at the origin and a small head at cell (1, 0)."""
    network = Network(cell_size=200.0)
    network.add_node(Vec2(0, 0), CFG.recommended_max_range, is_big=True)
    network.add_node(Vec2(SPACING, 0), CFG.recommended_max_range)
    network.add_node(Vec2(SPACING + 10, 5), CFG.recommended_max_range)
    runtime = Gs3Runtime.build(network, CFG, seed=1)
    big = Gs3DynamicNode(runtime, 0)
    head = Gs3DynamicNode(runtime, 1)
    assoc = Gs3DynamicNode(runtime, 2)
    # Hand-configure: big is root head of (0,0); node 1 heads (1,0).
    big.state.status = NodeStatus.WORK
    big.state.cell_axial = (0, 0)
    big.state.oil = big.state.current_il = runtime.lattice.point((0, 0))
    big.state.parent_id = 0
    big.state.hops_to_root = 0
    head.state.status = NodeStatus.WORK
    head.state.cell_axial = (1, 0)
    head.state.oil = head.state.current_il = runtime.lattice.point((1, 0))
    head.state.parent_id = 0
    head.state.hops_to_root = 1
    assoc.state.status = NodeStatus.ASSOCIATE
    assoc.state.head_id = 1
    assoc.state.head_position = head.position
    assoc.state.cell_axial = (1, 0)
    assoc.state.current_il = head.state.current_il
    return runtime, big, head, assoc


class TestNewChildHead:
    def test_parent_records_child(self):
        runtime, big, head, _ = build_two_heads()
        big.on_message(NewChildHead(sender=1, axial=(1, 0)), 1)
        assert 1 in big.state.children

    def test_non_head_ignores(self):
        runtime, _, _, assoc = build_two_heads()
        assoc.on_message(NewChildHead(sender=1, axial=(1, 0)), 1)
        assert assoc.state.children == set()


class TestParentSeek:
    def test_head_answers_with_ack_and_heartbeat(self):
        runtime, big, head, _ = build_two_heads()
        before = runtime.tracer.count("msg.unicast")
        big.on_message(ParentSeek(sender=1, axial=(1, 0)), 1)
        runtime.sim.run()
        # One ParentSeekAck plus one HeadInterAlive.
        assert runtime.tracer.count("msg.unicast") == before + 2

    def test_own_parent_does_not_answer(self):
        runtime, big, head, _ = build_two_heads()
        big.state.parent_id = 1  # contrived: big's parent is the seeker
        before = runtime.tracer.count("msg.unicast")
        big.on_message(ParentSeek(sender=1, axial=(1, 0)), 1)
        runtime.sim.run()
        assert runtime.tracer.count("msg.unicast") == before

    def test_associate_does_not_answer(self):
        runtime, _, _, assoc = build_two_heads()
        before = runtime.tracer.count("msg.unicast")
        assoc.on_message(ParentSeek(sender=0, axial=(0, 0)), 0)
        runtime.sim.run()
        assert runtime.tracer.count("msg.unicast") == before


class TestJoinAccept:
    def test_head_registers_joiner(self):
        runtime, _, head, _ = build_two_heads()
        head.on_message(
            JoinAccept(
                sender=2, position=Vec2(SPACING + 10, 5), via_surrogate=False
            ),
            2,
        )
        assert 2 in head.state.associate_positions

    def test_surrogate_relays_to_head(self):
        runtime, _, head, assoc = build_two_heads()
        before = runtime.tracer.count("msg.unicast")
        assoc.on_message(
            JoinAccept(
                sender=5, position=Vec2(SPACING + 20, 0), via_surrogate=True
            ),
            5,
        )
        runtime.sim.run()
        assert runtime.tracer.count("msg.unicast") == before + 1


class TestSanityExchange:
    def test_sane_head_answers_request(self):
        runtime, big, head, _ = build_two_heads()
        before = runtime.tracer.count("msg.unicast")
        head.on_message(SanityCheckReq(sender=0, axial=(0, 0)), 0)
        runtime.sim.run()
        assert runtime.tracer.count("msg.unicast") == before + 1

    def test_corrupt_head_stays_silent(self):
        runtime, big, head, _ = build_two_heads()
        head.state.oil = head.state.oil + Vec2(80.0, 0)  # corrupt
        before = runtime.tracer.count("msg.unicast")
        head.on_message(SanityCheckReq(sender=0, axial=(0, 0)), 0)
        runtime.sim.run()
        assert runtime.tracer.count("msg.unicast") == before

    def test_valid_reply_convicts_broken_requester(self):
        runtime, big, head, _ = build_two_heads()
        # Corrupt the big node's IL *consistently* is impossible; fake
        # a broken relation by pretending the neighbour's IL moved.
        bogus_il = Vec2(3 * SPACING, 0)
        big.on_message(
            SanityCheckValid(sender=1, axial=(1, 0), il=bogus_il, icc_icp=(0, 0)),
            1,
        )
        # The big node steps aside (BIG_SLIDE) rather than re-entering
        # plain BOOTUP: it stays the root-in-waiting and reclaims a
        # cell via _big_await_resume (PR 5 root-liveness semantics).
        assert big.state.status is NodeStatus.BIG_SLIDE

    def test_valid_reply_with_good_relation_is_harmless(self):
        runtime, big, head, _ = build_two_heads()
        big.on_message(
            SanityCheckValid(
                sender=1,
                axial=(1, 0),
                il=head.state.current_il,
                icc_icp=(0, 0),
            ),
            1,
        )
        assert big.state.status is NodeStatus.WORK

    def test_relation_violated_math(self):
        runtime, big, head, _ = build_two_heads()
        good = runtime.lattice.point((1, 0))
        assert not head._relation_violated(
            runtime.lattice.point((0, 0)), (0, 0)
        )
        assert head._relation_violated(Vec2(5 * SPACING, 0), (0, 0))
        # Different <ICC, ICP>: anything within 2*sqrt(3)R passes.
        assert not head._relation_violated(Vec2(SPACING * 1.5, 0), (1, 0))
        assert head._relation_violated(Vec2(5 * SPACING, 0), (1, 0))
