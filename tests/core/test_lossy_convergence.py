"""GS3-D convergence under adversarial channel loss (tier 2).

The paper assumes destination-unaware transmission *may* be lossy
(Section 2.1); heartbeat repetition is what makes the protocol
converge anyway.  These seeded tests pin that down: GS3-D must reach a
structure satisfying the static invariants I1–I4 under memoryless
broadcast loss and under a short Gilbert–Elliott burst channel.

At 5% loss the structure still reaches trace-quiescence, so the
reliable-channel driver contract applies unchanged.  At 20% loss the
structure is *live but never quiet* — lost heartbeats make associates
re-affirm membership forever — so convergence is asserted the way the
theory states it: after a fixed horizon, every invariant holds.
"""

import pytest

from repro.core import GS3Config, Gs3DynamicSimulation, check_static_invariant
from repro.net import ChannelFaultConfig, uniform_disk
from repro.sim import RngStreams

CFG = GS3Config(ideal_radius=100.0, radius_tolerance=25.0)


def build_lossy(channel, seed=7, n_nodes=620, field_radius=230.0):
    deployment = uniform_disk(field_radius, n_nodes, RngStreams(seed))
    sim = Gs3DynamicSimulation.from_deployment(
        deployment, CFG, seed=seed, channel_faults=channel
    )
    return sim, deployment


def assert_invariants(sim, deployment):
    snap = sim.snapshot()
    violations = check_static_invariant(
        snap,
        sim.network,
        field=deployment.field,
        gap_axials=sim.gap_axials(),
        dynamic=True,
    )
    assert violations == []


def test_converges_under_mild_bernoulli_loss():
    sim, deployment = build_lossy(
        ChannelFaultConfig.from_dict({"bernoulli_loss": 0.05})
    )
    sim.run_until_stable(window=60.0, max_time=20_000.0)
    assert sim.runtime.radio.faults.loss_drops > 0
    assert_invariants(sim, deployment)


@pytest.mark.slow
def test_invariants_hold_under_heavy_bernoulli_loss():
    """20% loss: the trace never goes quiet (membership is re-affirmed
    forever) and any single snapshot may catch a re-association
    transient, so the claim is the self-stabilization one — within a
    bounded horizon there is an instant at which every invariant holds."""
    sim, deployment = build_lossy(
        ChannelFaultConfig.from_dict({"bernoulli_loss": 0.2}),
        n_nodes=300,
        field_radius=160.0,
    )
    sim.start()
    for _ in range(3):  # sample at t = 4000, 8000, 12000
        sim.run_for(4_000.0)
        violations = check_static_invariant(
            sim.snapshot(),
            sim.network,
            field=deployment.field,
            gap_axials=sim.gap_axials(),
            dynamic=True,
        )
        if not violations:
            return
    pytest.fail(f"no clean instant by t={sim.now}: {violations}")


def test_converges_under_gilbert_elliott_bursts():
    """Short bursts (expected length ~3 deliveries, ~9% average loss)."""
    sim, deployment = build_lossy(
        ChannelFaultConfig.from_dict(
            {
                "gilbert_elliott": {
                    "p_enter_burst": 0.03,
                    "p_exit_burst": 0.3,
                    "loss_bad": 1.0,
                }
            }
        )
    )
    sim.run_until_stable(window=60.0, max_time=20_000.0)
    assert sim.runtime.radio.faults.loss_drops > 0
    assert_invariants(sim, deployment)


def test_lossy_stabilize_reports_converged():
    """The non-raising driver agrees with run_until_stable under loss."""
    sim, deployment = build_lossy(
        ChannelFaultConfig.from_dict({"bernoulli_loss": 0.05})
    )
    report = sim.stabilize(
        window=60.0, max_time=20_000.0, field=deployment.field
    )
    assert report.stable
    assert report.healed
    assert report.violations == ()
    assert report.converged_at is not None
