"""Root-liveness tests: epoch monotonicity, stale-view filtering,
ROOT_SEEK / regeneration, duplicate-root reconciliation, and the
DSDV-style cycle-impossibility property.

The jam-wedge integration proof lives in ``tests/sim/test_replay.py``;
these tests drive the machinery directly on hand-built miniature
networks (the jam scenario does exercise it end-to-end, but a single
trajectory cannot pin each branch).
"""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import GS3Config, Gs3DynamicNode, NodeStatus
from repro.core.invariants import check_root_liveness
from repro.core.messages import HeadInterAlive, RootSeek
from repro.core.multibig import root_rank
from repro.core.runtime import Gs3Runtime
from repro.core.state import NeighborInfo
from repro.geometry import Vec2
from repro.net import Network

CFG = GS3Config(ideal_radius=100.0, radius_tolerance=25.0)
SPACING = CFG.lattice_spacing
HORIZON = CFG.root_stale_horizon


def build_chain(n, big_root=False, seed=1):
    """``n`` heads in a line of cells (0,0), (1,0), ... (i heads cell
    (i, 0) and parents head i-1); no node runs its periodic timer, so
    tests drive maintenance and message delivery by hand."""
    network = Network(cell_size=200.0)
    for i in range(n):
        network.add_node(
            Vec2(i * SPACING, 0),
            CFG.recommended_max_range,
            is_big=(big_root and i == 0),
        )
    if not big_root:
        # The runtime requires a big node; park one far out of radio
        # range, in BOOTUP with no timer — it never participates.
        network.add_node(
            Vec2(-50.0 * SPACING, 50.0 * SPACING),
            CFG.recommended_max_range,
            is_big=True,
        )
    runtime = Gs3Runtime.build(network, CFG, seed=seed)
    if not big_root:
        Gs3DynamicNode(runtime, n)  # the parked big, passive
    nodes = [Gs3DynamicNode(runtime, i) for i in range(n)]
    for i, node in enumerate(nodes):
        state = node.state
        state.status = NodeStatus.WORK
        state.cell_axial = (i, 0)
        state.oil = state.current_il = runtime.lattice.point((i, 0))
        state.parent_id = i if i == 0 else i - 1
        state.hops_to_root = i
        state.root_position = Vec2(0, 0)
        node._parent_ok_since = runtime.sim.now
    return runtime, nodes


def beat_from(node, is_root=None):
    """The HeadInterAlive heartbeat ``node`` would emit right now."""
    state = node.state
    return HeadInterAlive(
        sender=node.node_id,
        position=node.position,
        axial=state.cell_axial,
        il=state.current_il,
        icc_icp=state.icc_icp,
        hops_to_root=state.hops_to_root,
        parent_id=state.parent_id,
        is_root=(node.is_root or node.is_proxy) if is_root is None else is_root,
        root_position=node.root_position,
        root_epoch=state.root_epoch,
        root_heard_at=state.root_heard_at,
    )


def parent_chain_acyclic(nodes):
    """Every parent chain ends at a root (or at None) without looping."""
    by_id = {node.node_id: node for node in nodes}
    for start in nodes:
        seen = set()
        current = start
        while True:
            if current.is_root or current.state.parent_id is None:
                break
            if current.node_id in seen:
                return False
            seen.add(current.node_id)
            parent = by_id.get(current.state.parent_id)
            if parent is None:
                break  # points outside the group: no cycle here
            current = parent
    return True


class TestEpochMonotonicity:
    def test_next_epoch_beats_own_and_heard(self):
        runtime, nodes = build_chain(1)
        node = nodes[0]
        node.state.root_epoch = 3
        node._max_epoch_heard = 7
        assert node._next_root_epoch() == 8
        node._max_epoch_heard = 1
        assert node._next_root_epoch() == 4

    def test_become_root_bumps_epoch_each_time(self):
        runtime, nodes = build_chain(1, big_root=True)
        big = nodes[0]
        big.become_root()
        first = big.state.root_epoch
        assert first >= 1
        big.become_root()
        assert big.state.root_epoch > first

    def test_any_message_raises_max_epoch_heard(self):
        runtime, nodes = build_chain(2)
        a, b = nodes
        b.state.root_epoch = 9
        a.on_message(beat_from(b), b.node_id)
        assert a._max_epoch_heard >= 9
        # ROOT_SEEK probes forward the highest epoch the seeker saw.
        a.on_message(
            RootSeek(sender=b.node_id, axial=(1, 0), max_epoch_heard=12),
            b.node_id,
        )
        assert a._max_epoch_heard >= 12

    def test_merge_never_regresses(self):
        runtime, nodes = build_chain(1)
        node = nodes[0]
        node.state.root_epoch = 2
        node.state.root_heard_at = 50.0
        node._merge_root_freshness(1, 90.0)  # older epoch: ignored
        assert (node.state.root_epoch, node.state.root_heard_at) == (2, 50.0)
        node._merge_root_freshness(2, 40.0)  # same epoch, staler: ignored
        assert node.state.root_heard_at == 50.0
        node._merge_root_freshness(2, None)  # unknown freshness: ignored
        assert node.state.root_heard_at == 50.0
        node._merge_root_freshness(2, 60.0)  # same epoch, fresher: taken
        assert node.state.root_heard_at == 60.0
        node._merge_root_freshness(3, 10.0)  # newer epoch always wins
        assert (node.state.root_epoch, node.state.root_heard_at) == (3, 10.0)


class TestRootRank:
    def test_newer_epoch_beats_everything(self):
        assert root_rank(2, False, 99) < root_rank(1, True, 0)

    def test_big_beats_regenerated_at_equal_epoch(self):
        assert root_rank(1, True, 99) < root_rank(1, False, 0)

    def test_lowest_id_breaks_full_ties(self):
        assert root_rank(1, False, 3) < root_rank(1, False, 7)


class TestStaleViewFiltering:
    """``_adopt_best_parent`` must ignore entries whose root view
    expired — the DSDV move that makes count-to-infinity impossible."""

    def _wire_neighbor(self, node, other, root_heard_at, last_heard):
        state = other.state
        node.state.neighbor_heads[state.cell_axial] = NeighborInfo(
            node_id=other.node_id,
            axial=state.cell_axial,
            il=state.current_il,
            position=other.position,
            hops_to_root=state.hops_to_root,
            last_heard=last_heard,
            root_epoch=state.root_epoch,
            root_heard_at=root_heard_at,
        )

    def test_fresh_neighbor_adopted_and_view_copied(self):
        runtime, nodes = build_chain(2)
        a, b = nodes[1], nodes[0]
        runtime.sim.run(until=200.0)
        b.state.root_epoch = 2
        a.state.parent_id = None
        self._wire_neighbor(a, b, root_heard_at=180.0, last_heard=199.0)
        a._adopt_best_parent()
        assert a.state.parent_id == b.node_id
        # DSDV view adoption: the child holds its parent's exact view.
        assert a.state.root_epoch == 2
        assert a.state.root_heard_at == 180.0

    def test_stale_root_view_not_adopted(self):
        runtime, nodes = build_chain(2)
        a, b = nodes[1], nodes[0]
        runtime.sim.run(until=200.0)
        a.state.parent_id = None
        # b heartbeats fine (live) but its root stamp expired.
        self._wire_neighbor(
            a, b, root_heard_at=200.0 - HORIZON - 1.0, last_heard=199.0
        )
        a._adopt_best_parent()
        assert a.state.parent_id is None

    def test_legacy_none_freshness_stays_adoptable(self):
        runtime, nodes = build_chain(2)
        a, b = nodes[1], nodes[0]
        runtime.sim.run(until=200.0)
        a.state.parent_id = None
        self._wire_neighbor(a, b, root_heard_at=None, last_heard=199.0)
        a._adopt_best_parent()
        assert a.state.parent_id == b.node_id

    def test_dead_known_head_not_resurrected_as_parent(self):
        # Satellite of the wedge fix: known_heads entries past the
        # failure timeout must not re-enter through the adoption merge.
        runtime, nodes = build_chain(2)
        a, b = nodes[1], nodes[0]
        runtime.sim.run(until=200.0)
        a.state.parent_id = None
        a._remember_head(
            b.node_id,
            b.position,
            b.state.current_il,
            b.state.cell_axial,
            0,
            root_epoch=1,
            root_heard_at=199.0,
        )
        a.known_heads[b.node_id].last_heard = (
            200.0 - CFG.failure_timeout - 1.0
        )
        a._adopt_best_parent()
        assert a.state.parent_id is None


class TestRootSeekAndRegeneration:
    def _strand(self, runtime, node, now):
        """Leave ``node`` parentless with an expired root view at
        ``now`` (but recently enough parented to not dissolve)."""
        runtime.sim.run(until=now)
        node.state.parent_id = None
        node.state.root_epoch = 1
        node.state.root_heard_at = now - HORIZON - 1.0
        node._parent_ok_since = now - 1.0

    def test_seek_then_regenerate_after_grace(self):
        runtime, nodes = build_chain(1)
        node = nodes[0]
        self._strand(runtime, node, 200.0)
        node._head_inter_cell()
        assert node._root_seek_since == 200.0
        assert runtime.tracer.count("root.seek") == 1
        assert not node.is_root  # grace: probe first, elect later
        runtime.sim.run(until=200.0 + 2.0 * CFG.heartbeat_interval + 1.0)
        node._head_inter_cell()
        assert node.is_root
        assert node.state.root_epoch >= 2
        assert node.state.hops_to_root == 0
        assert runtime.tracer.count("root.regenerate") == 1

    def test_election_defers_to_closer_live_head(self):
        runtime, nodes = build_chain(2)
        far, near = nodes[1], nodes[0]
        self._strand(runtime, far, 200.0)
        runtime.sim.run(until=230.0)
        # ``near`` (closer to the last known root position) is alive in
        # ``far``'s view: far must not elect itself.
        far.state.neighbor_heads[(0, 0)] = NeighborInfo(
            node_id=near.node_id,
            axial=(0, 0),
            il=near.state.current_il,
            position=near.position,
            hops_to_root=5,
            last_heard=229.0,
            root_epoch=1,
            root_heard_at=229.0 - HORIZON - 1.0,  # stale too
        )
        far._root_seek_since = 200.0
        assert not far._wins_root_election()
        far._head_inter_cell()
        assert not far.is_root

    def test_stale_head_does_not_answer_seek(self):
        # nodes[1] is a plain head (parent 0), nodes[2] the seeker.
        runtime, nodes = build_chain(3)
        answerer, seeker = nodes[1], nodes[2]
        runtime.sim.run(until=200.0)
        answerer.state.root_heard_at = 200.0 - HORIZON - 1.0
        before = runtime.tracer.count("msg.unicast")
        answerer.on_message(
            RootSeek(sender=seeker.node_id, axial=(2, 0)), seeker.node_id
        )
        runtime.sim.run()
        assert runtime.tracer.count("msg.unicast") == before

    def test_fresh_head_answers_seek_with_full_beat(self):
        runtime, nodes = build_chain(3)
        answerer, seeker = nodes[1], nodes[2]
        runtime.sim.run(until=200.0)
        answerer.state.root_heard_at = 195.0
        before = runtime.tracer.count("msg.unicast")
        answerer.on_message(
            RootSeek(sender=seeker.node_id, axial=(2, 0)), seeker.node_id
        )
        runtime.sim.run()
        # At least the reply beat (the delivery may cascade: the
        # seeker re-adopts and announces itself to the answerer).
        assert runtime.tracer.count("msg.unicast") > before

    def test_own_parent_does_not_answer_seek(self):
        # The seeker's parent adopting it back would be a 2-cycle.
        runtime, nodes = build_chain(3)
        answerer, seeker = nodes[1], nodes[2]
        runtime.sim.run(until=200.0)
        answerer.state.parent_id = seeker.node_id
        answerer.state.root_heard_at = 195.0
        before = runtime.tracer.count("msg.unicast")
        answerer.on_message(
            RootSeek(sender=seeker.node_id, axial=(2, 0)), seeker.node_id
        )
        runtime.sim.run()
        assert runtime.tracer.count("msg.unicast") == before


class TestReconciliation:
    def test_regenerated_root_demotes_to_big_on_equal_epoch(self):
        runtime, nodes = build_chain(2, big_root=True)
        big, regen = nodes
        runtime.sim.run(until=100.0)
        big.state.parent_id = big.node_id
        big.state.hops_to_root = 0
        big.state.root_epoch = 1
        big.state.root_heard_at = 100.0
        regen.state.parent_id = regen.node_id
        regen.state.hops_to_root = 0
        regen.state.root_epoch = 1
        regen.state.root_heard_at = 99.0
        assert big.is_root and regen.is_root
        regen.on_message(beat_from(big), big.node_id)
        assert not regen.is_root
        assert runtime.tracer.count("root.handback") == 1
        # The big node ignores the mirror-image beat (it outranks).
        big.on_message(beat_from(regen, is_root=True), regen.node_id)
        assert big.is_root

    def test_big_defers_to_strictly_newer_epoch(self):
        runtime, nodes = build_chain(2, big_root=True)
        big, regen = nodes
        runtime.sim.run(until=100.0)
        big.state.parent_id = big.node_id
        big.state.hops_to_root = 0
        big.state.root_epoch = 1
        big.state.root_heard_at = 100.0
        regen.state.parent_id = regen.node_id
        regen.state.hops_to_root = 0
        regen.state.root_epoch = 2
        regen.state.root_heard_at = 99.0
        big.on_message(beat_from(regen), regen.node_id)
        # BIG_SLIDE-style handback: the big steps aside (it will
        # re-claim with a higher epoch via _big_await_resume).
        assert big.state.status is big.big_away_status
        assert runtime.tracer.count("root.handback") == 1

    def test_non_root_heads_do_not_reconcile(self):
        runtime, nodes = build_chain(3)
        a, b = nodes[1], nodes[2]
        runtime.sim.run(until=100.0)
        a.state.root_epoch = 1
        b.state.root_epoch = 5
        a.on_message(beat_from(b), b.node_id)
        assert runtime.tracer.count("root.handback") == 0


class TestCheckRootLiveness:
    def test_flags_stale_head_and_accepts_unknown(self):
        runtime, nodes = build_chain(2)
        a, b = nodes
        runtime.sim.run(until=300.0)
        a.state.root_heard_at = 300.0 - HORIZON - 50.0
        b.state.root_heard_at = None  # legacy view: never flagged
        from repro.core import take_snapshot

        snapshot = take_snapshot(runtime)
        violations = check_root_liveness(snapshot, HORIZON)
        assert len(violations) == 1
        assert str(a.node_id) in violations[0]
        assert not check_root_liveness(snapshot, HORIZON + 100.0)


class TestCycleImpossibility:
    """Under arbitrary beat interleavings with no live root, no parent
    cycle survives: freshness only originates at a root, so a rootless
    cluster's views all expire within the staleness horizon and every
    chain ends at a seeker or a regenerated root (never a loop)."""

    @settings(max_examples=40, deadline=None)
    @given(
        actions=st.lists(
            st.one_of(
                st.tuples(
                    st.just("beat"),
                    st.integers(0, 3),
                    st.integers(0, 3),
                ),
                st.tuples(
                    st.just("advance"),
                    st.floats(1.0, 25.0),
                    st.just(0),
                ),
                st.tuples(st.just("tick"), st.integers(0, 3), st.just(0)),
            ),
            min_size=1,
            max_size=40,
        ),
        seed=st.integers(0, 3),
    )
    def test_no_parent_cycle_survives(self, actions, seed):
        runtime, nodes = build_chain(4, seed=seed)
        t0 = 10.0
        runtime.sim.run(until=t0)
        for node in nodes:
            node.state.root_epoch = 1
            node.state.root_heard_at = t0  # last stamp a root ever made
            node._parent_ok_since = t0
        # Rootless: the head of the chain lost its parent (the real
        # root died elsewhere); its hops_to_root=0 claim is stale data.
        nodes[0].state.parent_id = None
        for kind, i, j in actions:
            if kind == "beat" and i != j:
                nodes[j].on_message(beat_from(nodes[i]), nodes[i].node_id)
            elif kind == "advance":
                runtime.sim.run(until=runtime.sim.now + i)
            elif kind == "tick":
                node = nodes[i]
                if node.state.status.is_head_like:
                    node._parent_ok_since = max(
                        node._parent_ok_since, runtime.sim.now - 100.0
                    )
                    node._head_inter_cell()
            runtime.sim.run()
            # Soundness: freshness is never invented.  Until some node
            # regenerates (minting a new epoch and stamp), no view can
            # be fresher than the last real root stamp at t0.
            if runtime.tracer.count("root.regenerate") == 0:
                for node in nodes:
                    if not node.is_root:
                        heard = node.state.root_heard_at
                        assert heard is None or heard <= t0
        # Let every surviving head pass the staleness horizon and run
        # its maintenance a few times: seeks fire, at most one
        # election winner regenerates per cluster, chains re-anchor.
        for _ in range(4):
            runtime.sim.run(
                until=runtime.sim.now + HORIZON / 2.0 + CFG.heartbeat_interval
            )
            for node in nodes:
                if node.state.status.is_head_like:
                    node._parent_ok_since = runtime.sim.now - 1.0
                    node._head_inter_cell()
            runtime.sim.run()
        assert parent_chain_acyclic(nodes)
        # And specifically: nobody still *claims* a parent whose root
        # view is expired relative to the claimant's own clock.
        now = runtime.sim.now
        for node in nodes:
            if node.state.status.is_head_like and not node.is_root:
                heard = node.state.root_heard_at
                if node.state.parent_id is not None and heard is not None:
                    assert now - heard <= HORIZON + CFG.failure_timeout
