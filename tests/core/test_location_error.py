"""Robustness under location estimation error.

The paper assumes nodes detect relative location via signal strength;
this is never exact.  With per-node error well below R_t, GS3 must
still configure a covering structure whose bounds degrade by at most
the error magnitude.
"""

import math

import pytest

from repro.core import (
    GS3Config,
    Gs3Simulation,
    check_f4_coverage,
    check_i1_tree,
)
from repro.net import uniform_disk
from repro.sim import RngStreams

ERROR = 6.0  # about R_t / 4


@pytest.fixture(scope="module")
def noisy_run():
    config = GS3Config(
        ideal_radius=100.0, radius_tolerance=25.0, location_error=ERROR
    )
    deployment = uniform_disk(280.0, 950, RngStreams(65))
    sim = Gs3Simulation.from_deployment(deployment, config, seed=65)
    sim.run_to_quiescence()
    return sim, config


class TestLocationError:
    def test_structure_still_forms(self, noisy_run):
        sim, _ = noisy_run
        snap = sim.snapshot()
        assert len(snap.heads) >= 10
        assert len(snap.bootup_ids) == 0
        assert check_i1_tree(snap) == []

    def test_coverage_maintained(self, noisy_run):
        sim, _ = noisy_run
        assert check_f4_coverage(sim.snapshot(), sim.network) == []

    def test_neighbor_band_degrades_gracefully(self, noisy_run):
        sim, config = noisy_run
        snap = sim.snapshot()
        # True-position distances widen by at most ~2 worst-case errors
        # per endpoint; 4-sigma slack keeps the test deterministic-ish.
        slack = 8.0 * ERROR
        for a, b in snap.neighbor_head_pairs:
            d = a.position.distance_to(b.position)
            assert config.neighbor_distance_low - slack <= d
            assert d <= config.neighbor_distance_high + slack

    def test_believed_position_is_offset(self, noisy_run):
        sim, _ = noisy_run
        small = next(
            node
            for node in sim.runtime.nodes.values()
            if not node.is_big
        )
        assert not small.position.is_close(small.phys.position, tol=1e-9)

    def test_big_node_estimate_exact(self, noisy_run):
        sim, _ = noisy_run
        big = sim.runtime.nodes[sim.network.big_id]
        assert big.position == big.phys.position

    def test_zero_error_means_exact(self):
        config = GS3Config(ideal_radius=100.0, radius_tolerance=25.0)
        deployment = uniform_disk(200.0, 300, RngStreams(66))
        sim = Gs3Simulation.from_deployment(deployment, config, seed=66)
        node = next(
            n for n in sim.runtime.nodes.values() if not n.is_big
        )
        assert node.position == node.phys.position

    def test_negative_error_rejected(self):
        with pytest.raises(ValueError):
            GS3Config(location_error=-1.0)
