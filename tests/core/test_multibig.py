"""Tests for the multi-big-node extension (Section 7)."""

import pytest

from repro.core import (
    GS3Config,
    MultiBigSimulation,
    check_i1_tree,
    check_i2_children,
    check_i2_neighbors,
    partition_by_big,
)
from repro.geometry import Vec2
from repro.net import uniform_disk
from repro.sim import RngStreams

CFG = GS3Config(ideal_radius=100.0, radius_tolerance=25.0)


class TestPartition:
    def test_each_node_to_closest_big(self):
        bigs = [Vec2(-100, 0), Vec2(100, 0)]
        smalls = [Vec2(-90, 5), Vec2(90, -5), Vec2(-10, 0)]
        regions = partition_by_big(smalls, bigs)
        assert regions[0].small_positions == (Vec2(-90, 5), Vec2(-10, 0))
        assert regions[1].small_positions == (Vec2(90, -5),)

    def test_tie_breaks_to_first_big(self):
        bigs = [Vec2(-10, 0), Vec2(10, 0)]
        regions = partition_by_big([Vec2(0, 0)], bigs)
        assert regions[0].small_positions == (Vec2(0, 0),)
        assert regions[1].small_positions == ()

    def test_requires_bigs(self):
        with pytest.raises(ValueError):
            partition_by_big([Vec2(0, 0)], [])

    def test_node_count(self):
        regions = partition_by_big([Vec2(0, 0)], [Vec2(1, 1)])
        assert regions[0].node_count == 2


class TestMultiBigSimulation:
    @pytest.fixture(scope="class")
    def multi(self):
        deployment = uniform_disk(360.0, 1050, RngStreams(81))
        sim = MultiBigSimulation(
            deployment,
            big_positions=[Vec2(-160.0, 0.0), Vec2(160.0, 0.0)],
            config=CFG,
            seed=81,
        )
        sim.run_until_stable(window=60.0, max_time=5000.0)
        return sim

    def test_two_regions(self, multi):
        assert multi.region_count == 2

    def test_both_regions_configure(self, multi):
        for snapshot in multi.snapshots():
            assert len(snapshot.heads) >= 3
            assert len(snapshot.bootup_ids) == 0

    def test_each_region_rooted_at_its_big(self, multi):
        for region, snapshot in zip(multi.regions, multi.snapshots()):
            assert snapshot.roots == [region.network.big_id]

    def test_regions_satisfy_invariant(self, multi):
        # Each region's coverage is a Voronoi half-plane cut of the
        # disk, so the disk-based inner/boundary classifier does not
        # apply; check the location-independent invariants plus the
        # boundary-cell radius bound.
        import math

        boundary_bound = (
            math.sqrt(3) * CFG.ideal_radius + 2 * CFG.radius_tolerance
        )
        for region, snapshot in zip(multi.regions, multi.snapshots()):
            assert check_i1_tree(snapshot) == []
            assert check_i2_neighbors(snapshot) == []
            assert check_i2_children(snapshot, dynamic=True) == []
            for head_id in snapshot.heads:
                assert (
                    snapshot.cell_radius_of(head_id)
                    <= boundary_bound + 1e-6
                )

    def test_total_heads(self, multi):
        assert multi.total_heads() == sum(
            len(s.heads) for s in multi.snapshots()
        )

    def test_region_of_point(self, multi):
        assert multi.region_of_point(Vec2(-300, 0)) == 0
        assert multi.region_of_point(Vec2(300, 0)) == 1

    def test_regions_heal_independently(self, multi):
        region = multi.regions[0]
        victim = next(
            v for v in region.snapshot().heads.values() if not v.is_big
        )
        other_heads_before = set(multi.regions[1].snapshot().heads)
        region.kill_node(victim.node_id)
        region.run_until_stable(window=100.0, max_time=region.now + 20000.0)
        assert victim.cell_axial in region.snapshot().head_by_axial
        assert set(multi.regions[1].snapshot().heads) == other_heads_before
