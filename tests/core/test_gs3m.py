"""Integration tests for GS3-M: mobile dynamic networks."""

import math

import pytest

from repro.core import (
    GS3Config,
    Gs3DynamicSimulation,
    Gs3MobileNode,
    NodeStatus,
    check_i1_tree,
    check_static_invariant,
)
from repro.geometry import Vec2, hex_distance
from repro.net import uniform_disk
from repro.sim import RngStreams

CFG = GS3Config(ideal_radius=100.0, radius_tolerance=25.0)


def configure(seed=9, n_nodes=750, field_radius=250.0):
    deployment = uniform_disk(field_radius, n_nodes, RngStreams(seed))
    sim = Gs3DynamicSimulation.from_deployment(
        deployment, CFG, seed=seed, node_class=Gs3MobileNode
    )
    sim.run_until_stable(window=60.0, max_time=5000.0)
    return sim, deployment


def tree_edges(snapshot):
    return {
        v.cell_axial: (
            snapshot.heads[v.parent_id].cell_axial
            if v.parent_id in snapshot.heads
            else None
        )
        for v in snapshot.heads.values()
    }


class TestBigNodeMove:
    def test_big_retreats_beyond_tolerance(self):
        sim, _ = configure(seed=81)
        big = sim.network.big_id
        old = sim.network.node(big).position
        sim.move_node(big, old + Vec2(3 * CFG.radius_tolerance, 0))
        sim.run_for(50.0)
        status = sim.runtime.nodes[big].state.status
        assert status in (NodeStatus.BIG_MOVE, NodeStatus.WORK)
        assert sim.tracer.count("big.move_away") == 1

    def test_small_move_keeps_headship(self):
        sim, _ = configure(seed=82)
        big = sim.network.big_id
        old = sim.network.node(big).position
        sim.move_node(big, old + Vec2(CFG.radius_tolerance * 0.5, 0))
        sim.run_for(100.0)
        assert sim.runtime.nodes[big].state.status is NodeStatus.WORK
        assert sim.tracer.count("big.move_away") == 0

    def test_big_resumes_at_new_cell(self):
        sim, _ = configure(seed=83)
        big = sim.network.big_id
        old = sim.network.node(big).position
        # Move exactly one lattice spacing: lands on a neighbouring IL.
        sim.move_node(big, old + Vec2(CFG.lattice_spacing, 0))
        sim.run_until_stable(window=120.0, max_time=sim.now + 30000.0)
        snap = sim.snapshot()
        assert snap.views[big].status is NodeStatus.WORK
        assert snap.roots == [big]
        assert snap.views[big].cell_axial == (1, 0)

    @pytest.mark.slow
    def test_proxy_deputises_while_away(self):
        sim, _ = configure(seed=84)
        big = sim.network.big_id
        old = sim.network.node(big).position
        # Move to a cell corner: no IL within R_t, so the big node
        # stays in BIG_MOVE with a proxy as root.
        corner = old + Vec2(CFG.lattice_spacing / 2.0, CFG.ideal_radius / 2.0)
        sim.move_node(big, corner)
        sim.run_for(600.0)
        snap = sim.snapshot()
        big_view = snap.views[big]
        assert big_view.status is NodeStatus.BIG_MOVE
        assert len(snap.roots) == 1
        root_view = snap.heads[snap.roots[0]]
        # The proxy root is a head near the big node.
        assert root_view.position.distance_to(corner) < 2 * CFG.ideal_radius
        assert check_i1_tree(snap) == []

    def test_invariant_holds_after_move(self):
        sim, deployment = configure(seed=85)
        big = sim.network.big_id
        old = sim.network.node(big).position
        sim.move_node(big, old + Vec2(CFG.lattice_spacing, 0))
        sim.run_until_stable(window=120.0, max_time=sim.now + 30000.0)
        snap = sim.snapshot()
        assert (
            check_static_invariant(
                snap, sim.network, field=deployment.field, dynamic=True
            )
            == []
        )

    def test_impact_is_local(self):
        # Theorem 11's shape: tree-edge changes concentrate near the
        # move; cells more than a couple of bands from the move's
        # midpoint keep their parent edge.
        sim, _ = configure(seed=86)
        before = tree_edges(sim.snapshot())
        big = sim.network.big_id
        old = sim.network.node(big).position
        d = CFG.lattice_spacing
        sim.move_node(big, old + Vec2(d, 0))
        sim.run_until_stable(window=120.0, max_time=sim.now + 30000.0)
        snap = sim.snapshot()
        after = tree_edges(snap)
        changed = [
            axial
            for axial, parent in after.items()
            if axial in before and before[axial] != parent
        ]
        assert changed, "the move must affect at least the root's cells"
        for axial in changed:
            assert hex_distance(axial) <= 3


class TestSmallNodeMobility:
    def test_moved_associate_switches_cells(self):
        sim, _ = configure(seed=87)
        snap = sim.snapshot()
        # Pick an associate and teleport it next to a *different* head.
        associate = next(
            v
            for v in snap.associates.values()
            if not v.is_candidate and v.head_id in snap.heads
        )
        other_head = next(
            h
            for h in snap.heads.values()
            if h.node_id != associate.head_id
        )
        sim.move_node(
            associate.node_id, other_head.position + Vec2(15.0, 0.0)
        )
        sim.run_for(400.0)
        state = sim.runtime.nodes[associate.node_id].state
        assert state.status is NodeStatus.ASSOCIATE
        assert state.head_id == other_head.node_id

    def test_moved_head_hands_over_cell(self):
        sim, _ = configure(seed=88)
        snap = sim.snapshot()
        head = next(v for v in snap.heads.values() if not v.is_big)
        sim.move_node(
            head.node_id,
            head.position + Vec2(3 * CFG.radius_tolerance, 0.0),
        )
        sim.run_until_stable(window=120.0, max_time=sim.now + 30000.0)
        healed = sim.snapshot()
        # The cell still exists with a head near its IL.
        assert head.cell_axial in healed.head_by_axial
        new_head = healed.head_by_axial[head.cell_axial]
        assert (
            new_head.position.distance_to(new_head.current_il)
            <= CFG.radius_tolerance + 1e-6
        )
