"""Integration tests for GS3-S: static self-configuration.

These tests run the full diffusing computation on generated
deployments and assert the paper's invariant (SI), fixpoint (SF), and
scalability properties.
"""

import math

import pytest

from repro.core import (
    GS3Config,
    Gs3Simulation,
    NodeStatus,
    check_f4_coverage,
    check_i1_physical_connectivity,
    check_i1_tree,
    check_i2_cell_radius,
    check_i2_children,
    check_i2_inner_six,
    check_i2_neighbors,
    check_i3_associate_optimality,
    check_static_fixpoint,
)
from repro.geometry import Vec2, hex_distance
from repro.net import grid_jitter, uniform_disk
from repro.sim import RngStreams

CFG = GS3Config(ideal_radius=100.0, radius_tolerance=25.0)


def run_static(deployment, config=CFG, seed=0):
    sim = Gs3Simulation.from_deployment(deployment, config, seed=seed)
    sim.run_to_quiescence()
    return sim


@pytest.fixture(scope="module")
def converged():
    """One converged medium-size run shared by read-only tests."""
    deployment = uniform_disk(450.0, 2500, RngStreams(11))
    sim = run_static(deployment, seed=11)
    return sim, deployment, sim.snapshot()


class TestConvergence:
    def test_terminates(self, converged):
        sim, _, _ = converged
        assert sim.runtime.sim.pending_events == 0

    def test_every_node_classified(self, converged):
        _, _, snap = converged
        assert len(snap.bootup_ids) == 0

    def test_head_count_close_to_tiling(self, converged):
        _, deployment, snap = converged
        cell_area = 3 * math.sqrt(3) / 2 * (CFG.lattice_spacing / math.sqrt(3)) ** 2
        expected = math.pi * deployment.field.radius**2 / cell_area
        assert 0.6 * expected < len(snap.heads) < 1.6 * expected

    def test_deterministic_given_seed(self):
        deployment = uniform_disk(300.0, 900, RngStreams(5))
        snap_a = run_static(deployment, seed=5).snapshot()
        snap_b = run_static(deployment, seed=5).snapshot()
        assert set(snap_a.heads) == set(snap_b.heads)
        assert {
            a: v.head_id for a, v in snap_a.associates.items()
        } == {a: v.head_id for a, v in snap_b.associates.items()}


class TestInvariantSI:
    def test_i1_tree(self, converged):
        _, _, snap = converged
        assert check_i1_tree(snap) == []

    def test_i1_physical(self, converged):
        sim, _, snap = converged
        assert check_i1_physical_connectivity(snap, sim.network) == []

    def test_i2_neighbor_distances(self, converged):
        _, _, snap = converged
        assert check_i2_neighbors(snap) == []

    def test_i2_inner_heads_have_six_neighbors(self, converged):
        sim, deployment, snap = converged
        assert (
            check_i2_inner_six(
                snap, deployment.field, gap_axials=sim.gap_axials()
            )
            == []
        )

    def test_i2_children_bound(self, converged):
        _, _, snap = converged
        assert check_i2_children(snap) == []

    def test_i2_cell_radius(self, converged):
        sim, deployment, snap = converged
        assert (
            check_i2_cell_radius(
                snap, deployment.field, gap_axials=sim.gap_axials()
            )
            == []
        )

    def test_root_is_big_node(self, converged):
        sim, _, snap = converged
        assert snap.roots == [sim.network.big_id]

    def test_big_node_children_six(self, converged):
        sim, _, snap = converged
        assert len(snap.children_of[sim.network.big_id]) == 6


class TestFixpointSF:
    def test_f3_associate_optimality(self, converged):
        _, _, snap = converged
        assert check_i3_associate_optimality(snap) == []

    def test_f4_coverage(self, converged):
        sim, _, snap = converged
        assert check_f4_coverage(snap, sim.network) == []

    def test_full_fixpoint(self, converged):
        sim, deployment, snap = converged
        assert (
            check_static_fixpoint(
                snap,
                sim.network,
                field=deployment.field,
                gap_axials=sim.gap_axials(),
            )
            == []
        )

    @pytest.mark.parametrize("seed", [21, 22, 23])
    def test_fixpoint_across_seeds(self, seed):
        deployment = uniform_disk(350.0, 1500, RngStreams(seed))
        sim = run_static(deployment, seed=seed)
        snap = sim.snapshot()
        assert (
            check_static_fixpoint(
                snap,
                sim.network,
                field=deployment.field,
                gap_axials=sim.gap_axials(),
            )
            == []
        )

    def test_fixpoint_on_grid_deployment(self):
        deployment = grid_jitter(350.0, 20.0, 6.0, RngStreams(31))
        sim = run_static(deployment, seed=31)
        snap = sim.snapshot()
        assert (
            check_static_fixpoint(snap, sim.network, field=deployment.field)
            == []
        )


class TestHexagonalGeometry:
    def test_heads_near_their_ils(self, converged):
        _, _, snap = converged
        for view in snap.heads.values():
            assert view.position.distance_to(view.current_il) <= (
                CFG.radius_tolerance + 1e-6
            )

    def test_neighbor_distance_band(self, converged):
        _, _, snap = converged
        for a, b in snap.neighbor_head_pairs:
            d = a.position.distance_to(b.position)
            assert CFG.neighbor_distance_low - 1e-6 <= d
            assert d <= CFG.neighbor_distance_high + 1e-6

    def test_cell_axials_unique(self, converged):
        _, _, snap = converged
        axials = [v.cell_axial for v in snap.heads.values()]
        assert len(axials) == len(set(axials))

    def test_band_matches_hops_near_root(self, converged):
        # In the diffusing computation, a head's hop count equals its
        # band except where diffusion speed differs; near the root they
        # coincide.
        _, _, snap = converged
        for view in snap.heads.values():
            band = hex_distance(view.cell_axial)
            if band <= 1:
                assert view.hops_to_root == band


class TestScalability:
    def test_constant_local_knowledge(self, converged):
        # Local knowledge: nodes remember only heads within the
        # coordination radius -> a constant with respect to network
        # size (at most the ~13 cells within sqrt(3)R + 2R_t + slack).
        sim, _, _ = converged
        for node in sim.runtime.nodes.values():
            assert len(node.known_heads) <= 14

    def test_children_at_most_three_for_small_heads(self, converged):
        sim, _, snap = converged
        for head_id, children in snap.children_of.items():
            if head_id != sim.network.big_id:
                assert len(children) <= 3


class TestDisconnectedNodes:
    def test_unreachable_island_not_configured(self):
        # Nodes beyond radio reach of the main field must stay bootup
        # (requirement c: in a cell iff connected to the big node).
        deployment = uniform_disk(250.0, 600, RngStreams(41))
        island = tuple(
            Vec2(2000.0 + dx, 2000.0 + dy)
            for dx, dy in [(0, 0), (10, 0), (0, 10)]
        )
        from dataclasses import replace

        deployment = replace(
            deployment,
            small_positions=deployment.small_positions + island,
        )
        sim = run_static(deployment, seed=41)
        snap = sim.snapshot()
        island_ids = [
            v.node_id
            for v in snap.views.values()
            if v.position.x > 1000.0
        ]
        assert len(island_ids) == 3
        for node_id in island_ids:
            assert snap.views[node_id].status is NodeStatus.BOOTUP


class TestAnchoringAblation:
    def test_drift_grows_without_il_anchoring(self):
        # With anchor_on_il=False, head placement error accumulates
        # band by band; with the paper's IL anchoring it stays within
        # R_t of the exact lattice.
        deployment = uniform_disk(500.0, 3200, RngStreams(51))
        exact_cfg = GS3Config(
            ideal_radius=100.0, radius_tolerance=25.0, anchor_on_il=True
        )
        drift_cfg = GS3Config(
            ideal_radius=100.0, radius_tolerance=25.0, anchor_on_il=False
        )
        exact_snap = run_static(deployment, exact_cfg, seed=51).snapshot()
        drift_snap = run_static(deployment, drift_cfg, seed=51).snapshot()

        def max_lattice_error(snap):
            return max(
                v.position.distance_to(snap.lattice.point(v.cell_axial))
                for v in snap.heads.values()
            )

        exact_error = max_lattice_error(exact_snap)
        drift_error = max_lattice_error(drift_snap)
        assert exact_error <= 25.0 + 1e-6
        assert drift_error > exact_error
