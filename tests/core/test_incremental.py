"""Differential suite: incremental invariant checking == full rescan.

The scale refactor added :class:`IncrementalInvariantChecker` (dirty
nodes from traces, cached I3 verdicts, seeded snapshots) and two
rewrites inside ``invariants.py`` itself: a spatial-index nearest-head
strategy for I3 and a memoized O(H) ancestor walk for I1.  Everything
here pins one contract: the fast paths produce exactly the
``check_static_invariant`` / ``check_static_fixpoint`` violations the
slow paths do, under arbitrary perturbation sequences.
"""

import random

import pytest

from repro import GS3Config
from repro.core import (
    Gs3DynamicSimulation,
    IncrementalInvariantChecker,
    check_i1_tree,
    check_i3_associate_optimality,
    check_static_fixpoint,
    check_static_invariant,
)
from repro.geometry import Vec2
from repro.net import uniform_disk
from repro.sim import RngStreams


def build_sim(seed=11, n=220, radius=190.0):
    deployment = uniform_disk(radius, n, RngStreams(seed))
    sim = Gs3DynamicSimulation.from_deployment(
        deployment, GS3Config(), seed=seed
    )
    return sim, deployment


def full_violations(sim, deployment, fixpoint=False):
    fn = check_static_fixpoint if fixpoint else check_static_invariant
    return fn(
        sim.snapshot(),
        sim.network,
        field=deployment.field,
        gap_axials=sim.gap_axials(),
        dynamic=True,
    )


def churn(sim, rng, ids, steps):
    for _ in range(steps):
        op = rng.choice(["kill", "kill", "revive", "move", "corrupt", "add"])
        victim = rng.choice(ids)
        if op == "kill":
            sim.kill_node(victim)
        elif op == "revive":
            sim.revive_node(victim)
        elif op == "corrupt":
            sim.corrupt_node(victim)
        elif op == "add":
            ids.append(
                sim.add_node(
                    Vec2(rng.uniform(-180, 180), rng.uniform(-180, 180))
                )
            )
        else:
            sim.move_node(
                victim,
                Vec2(rng.uniform(-180, 180), rng.uniform(-180, 180)),
            )


class TestIncrementalEqualsFull:
    @pytest.mark.parametrize("seed", [3, 7, 21])
    def test_perturbation_sequences(self, seed):
        sim, deployment = build_sim(seed=seed)
        checker = IncrementalInvariantChecker(
            sim, field=deployment.field, dynamic=True
        )
        sim.run_until_stable(window=50.0, max_time=30_000.0)
        assert sorted(checker.check()) == sorted(
            full_violations(sim, deployment)
        )
        rng = random.Random(seed * 13 + 1)
        ids = [n.node_id for n in sim.network if not n.is_big]
        exercised = 0
        for _ in range(8):
            churn(sim, rng, ids, steps=8)
            # Checking mid-healing (or immediately) keeps violations
            # nonzero, so the differential has teeth.
            sim.run_for(rng.choice([0.0, 0.5, 4.0]))
            incremental = checker.check()
            full = full_violations(sim, deployment)
            assert sorted(incremental) == sorted(full)
            fix_inc = checker.check(fixpoint=True)
            fix_full = full_violations(sim, deployment, fixpoint=True)
            assert sorted(fix_inc) == sorted(fix_full)
            exercised += len(full) + len(fix_full)
        assert exercised > 0  # the sequences actually produced violations

    def test_full_rescan_escape_hatch(self):
        sim, deployment = build_sim(seed=5, n=120)
        checker = IncrementalInvariantChecker(
            sim, field=deployment.field, dynamic=True
        )
        sim.run_until_stable(window=50.0, max_time=30_000.0)
        checker.check()
        # An untraced, out-of-band mutation: the checker cannot see it...
        victim = next(
            n.node_id for n in sim.network if not n.is_big and n.alive
        )
        sim.network.kill_node(victim)
        # ...until told to rescan.
        checker.mark_all_dirty()
        assert sorted(checker.check()) == sorted(
            full_violations(sim, deployment)
        )
        sim.network.revive_node(victim)
        assert sorted(checker.full_rescan()) == sorted(
            full_violations(sim, deployment)
        )

    def test_mark_dirty_covers_untraced_moves(self):
        sim, deployment = build_sim(seed=9, n=120)
        checker = IncrementalInvariantChecker(
            sim, field=deployment.field, dynamic=True
        )
        sim.run_until_stable(window=50.0, max_time=30_000.0)
        checker.check()
        victim = next(
            n.node_id for n in sim.network if not n.is_big and n.alive
        )
        # A mobility-model style direct network move, reported via the
        # documented mark_dirty listener hook.
        sim.network.move_node(victim, Vec2(5.0, 5.0))
        checker.mark_dirty(victim)
        assert sorted(checker.check()) == sorted(
            full_violations(sim, deployment)
        )

    def test_dirty_counter_drains(self):
        sim, deployment = build_sim(seed=2, n=100)
        checker = IncrementalInvariantChecker(
            sim, field=deployment.field, dynamic=True
        )
        sim.run_until_stable(window=50.0, max_time=30_000.0)
        checker.check()
        sim.kill_node(
            next(n.node_id for n in sim.network if not n.is_big and n.alive)
        )
        assert checker.dirty_count >= 1
        checker.check()
        assert checker.dirty_count == 0
        checker.close()  # detaches without error


class TestSpatialI3EqualsScan:
    @pytest.mark.parametrize("seed", [1, 4])
    def test_spatial_matches_all_pairs(self, seed):
        sim, deployment = build_sim(seed=seed)
        sim.run_until_stable(window=50.0, max_time=30_000.0)
        rng = random.Random(seed)
        ids = [n.node_id for n in sim.network if not n.is_big]
        for _ in range(4):
            churn(sim, rng, ids, steps=6)
            sim.run_for(rng.choice([0.0, 2.0]))
            snapshot = sim.snapshot()
            for restrict, field in [(False, None), (True, deployment.field)]:
                spatial = check_i3_associate_optimality(
                    snapshot, restrict, field, spatial=True
                )
                scan = check_i3_associate_optimality(
                    snapshot, restrict, field, spatial=False
                )
                assert spatial == scan  # same content, same order


class TestMemoizedI1Tree:
    def test_broken_parent_graphs_match_reference(self):
        """Cycles, dead ancestors, and parentless chains produce the
        same messages the per-head walk did."""
        sim, deployment = build_sim(seed=6, n=150)
        sim.run_until_stable(window=50.0, max_time=30_000.0)
        rng = random.Random(17)
        heads = [
            node_id
            for node_id, view in sim.snapshot().heads.items()
            if not view.is_big
        ]
        # Wire a parent cycle and a dangling parent directly.
        if len(heads) >= 4:
            a, b, c, d = heads[:4]
            sim.runtime.nodes[a].state.parent_id = b
            sim.runtime.nodes[b].state.parent_id = a
            sim.runtime.nodes[c].state.parent_id = None
            sim.runtime.nodes[d].state.parent_id = 999_999
        snapshot = sim.snapshot()
        got = check_i1_tree(snapshot)
        expected = reference_i1_tree(snapshot)
        assert got == expected


def reference_i1_tree(snapshot):
    """The pre-memoization per-head walk, verbatim."""
    violations = []
    heads = snapshot.heads
    if not heads:
        return ["head graph is empty"]
    roots = snapshot.roots
    if len(roots) != 1:
        violations.append(f"expected exactly one root, found {roots}")
    else:
        root = roots[0]
        root_view = heads[root]
        big_view = snapshot.views.get(snapshot.big_id)
        if big_view is not None and big_view.is_head and root != snapshot.big_id:
            violations.append(
                f"big node {snapshot.big_id} is a head but root is {root}"
            )
        if root_view.hops_to_root != 0:
            violations.append(f"root {root} has hops_to_root != 0")
    for head_id in heads:
        seen = set()
        current = head_id
        while True:
            if current in seen:
                violations.append(f"parent cycle through head {head_id}")
                break
            seen.add(current)
            view = heads.get(current)
            if view is None:
                violations.append(
                    f"head {head_id} has ancestor {current} that is not a live head"
                )
                break
            if view.parent_id == current:
                break
            if view.parent_id is None:
                violations.append(f"head {current} has no parent")
                break
            current = view.parent_id
    return violations
