"""Negative-case tests for the invariant checkers.

The integration tests prove the checkers pass on correct structures;
these prove they *fail* on corrupted ones, i.e. that the oracle
actually discriminates.
"""

import math

import pytest

from repro.core import (
    NodeStatus,
    NodeView,
    StructureSnapshot,
    check_f4_coverage,
    check_i1_tree,
    check_i2_cell_radius,
    check_i2_children,
    check_i2_neighbors,
    check_i3_associate_optimality,
)
from repro.geometry import Disk, HexLattice, Vec2
from repro.net import Network

R = 100.0
RT = 25.0
SPACING = math.sqrt(3) * R
LATTICE = HexLattice(Vec2(0, 0), SPACING)


def head_view(node_id, axial, parent_id, position=None, hops=1, icc_icp=(0, 0)):
    il = LATTICE.point(axial)
    return NodeView(
        node_id=node_id,
        position=position if position is not None else il,
        status=NodeStatus.WORK,
        alive=True,
        is_big=(node_id == 0),
        cell_axial=axial,
        current_il=il,
        oil=il,
        icc_icp=icc_icp,
        parent_id=parent_id,
        hops_to_root=hops,
        head_id=None,
        is_candidate=False,
    )


def associate_view(node_id, position, head_id):
    return NodeView(
        node_id=node_id,
        position=position,
        status=NodeStatus.ASSOCIATE,
        alive=True,
        is_big=False,
        cell_axial=None,
        current_il=None,
        oil=None,
        icc_icp=(0, 0),
        parent_id=None,
        hops_to_root=0,
        head_id=head_id,
        is_candidate=False,
    )


def snapshot_of(views):
    return StructureSnapshot(
        time=0.0,
        ideal_radius=R,
        radius_tolerance=RT,
        lattice=LATTICE,
        big_id=0,
        views={v.node_id: v for v in views},
    )


def simple_tree():
    root = head_view(0, (0, 0), 0, hops=0)
    child = head_view(1, (1, 0), 0)
    return [root, child]


class TestTreeChecker:
    def test_valid_tree_passes(self):
        assert check_i1_tree(snapshot_of(simple_tree())) == []

    def test_empty_head_graph_fails(self):
        assert check_i1_tree(snapshot_of([])) != []

    def test_two_roots_fail(self):
        views = simple_tree()
        views[1] = head_view(1, (1, 0), 1)  # self-parent: second root
        assert any("root" in v for v in check_i1_tree(snapshot_of(views)))

    def test_cycle_detected(self):
        a = head_view(0, (0, 0), 1, hops=0)
        b = head_view(1, (1, 0), 0)
        violations = check_i1_tree(snapshot_of([a, b]))
        assert any("cycle" in v or "root" in v for v in violations)

    def test_dangling_parent_detected(self):
        views = [head_view(0, (0, 0), 0, hops=0), head_view(1, (1, 0), 99)]
        violations = check_i1_tree(snapshot_of(views))
        assert any("not a live head" in v for v in violations)

    def test_nonzero_root_hops_detected(self):
        root = head_view(0, (0, 0), 0, hops=3)
        violations = check_i1_tree(snapshot_of([root]))
        assert any("hops_to_root" in v for v in violations)


class TestNeighborChecker:
    def test_in_band_passes(self):
        assert check_i2_neighbors(snapshot_of(simple_tree())) == []

    def test_too_close_fails(self):
        root = head_view(0, (0, 0), 0, hops=0)
        near = head_view(
            1, (1, 0), 0, position=Vec2(SPACING - 3 * RT, 0)
        )
        assert check_i2_neighbors(snapshot_of([root, near])) != []

    def test_too_far_fails(self):
        root = head_view(0, (0, 0), 0, hops=0)
        far = head_view(1, (1, 0), 0, position=Vec2(SPACING + 3 * RT, 0))
        assert check_i2_neighbors(snapshot_of([root, far])) != []

    def test_different_icc_icp_uses_il_distance(self):
        # Mid-slide, one cell shifted: distance judged against the IL
        # distance rather than sqrt(3) R.
        root = head_view(0, (0, 0), 0, hops=0)
        shifted = head_view(1, (1, 0), 0, icc_icp=(1, 0))
        # Positions still at their (unshifted) ILs: |d - d_il| = 0 <= 2 R_t.
        assert check_i2_neighbors(snapshot_of([root, shifted])) == []


class TestChildrenChecker:
    def build_with_children(self, n_children, root_children=0):
        views = [head_view(0, (0, 0), 0, hops=0)]
        # Give head 1 a cell adjacent to the root.
        views.append(head_view(1, (1, 0), 0))
        ring2 = [(2, -1), (2, 0), (1, 1), (0, 2), (-1, 2), (2, -2)]
        for i in range(n_children):
            views.append(head_view(10 + i, ring2[i], 1, hops=2))
        return snapshot_of(views)

    def test_three_children_ok_static(self):
        assert check_i2_children(self.build_with_children(3)) == []

    def test_four_children_fail_static(self):
        assert check_i2_children(self.build_with_children(4)) != []

    def test_five_children_ok_dynamic(self):
        assert (
            check_i2_children(self.build_with_children(5), dynamic=True) == []
        )

    def test_six_children_fail_dynamic(self):
        assert (
            check_i2_children(self.build_with_children(6), dynamic=True) != []
        )


class TestCellRadiusChecker:
    def test_inner_bound_violation(self):
        head = head_view(0, (0, 0), 0, hops=0)
        far_assoc = associate_view(5, Vec2(R + 2 * RT, 0), 0)
        violations = check_i2_cell_radius(snapshot_of([head, far_assoc]))
        assert violations != []

    def test_within_bound_passes(self):
        head = head_view(0, (0, 0), 0, hops=0)
        ok_assoc = associate_view(5, Vec2(R, 0), 0)
        assert check_i2_cell_radius(snapshot_of([head, ok_assoc])) == []

    def test_boundary_cells_get_relaxed_bound(self):
        head = head_view(0, (0, 0), 0, hops=0)
        far_assoc = associate_view(5, Vec2(math.sqrt(3) * R, 0), 0)
        snap = snapshot_of([head, far_assoc])
        # Without field info the strict bound applies...
        assert check_i2_cell_radius(snap) != []
        # ...with a small field, the cell is boundary and the relaxed
        # bound sqrt(3) R + 2 R_t admits it.
        assert check_i2_cell_radius(snap, field=Disk(Vec2(0, 0), R)) == []


class TestAssociateOptimality:
    def test_closest_head_passes(self):
        views = simple_tree() + [associate_view(5, Vec2(30, 0), 0)]
        assert check_i3_associate_optimality(snapshot_of(views)) == []

    def test_wrong_head_fails(self):
        views = simple_tree() + [associate_view(5, Vec2(30, 0), 1)]
        assert check_i3_associate_optimality(snapshot_of(views)) != []

    def test_dead_head_reported(self):
        views = simple_tree() + [associate_view(5, Vec2(30, 0), 77)]
        violations = check_i3_associate_optimality(snapshot_of(views))
        assert any("dead/unknown" in v for v in violations)


class TestCoverageChecker:
    def build_network(self):
        net = Network(cell_size=100.0)
        net.add_node(Vec2(0, 0), 500.0, is_big=True)  # id 0
        net.add_node(LATTICE.point((1, 0)), 500.0)  # id 1
        net.add_node(Vec2(30, 0), 500.0)  # id 5... actually id 2
        return net

    def test_covered_network_passes(self):
        net = self.build_network()
        views = simple_tree() + [associate_view(2, Vec2(30, 0), 0)]
        assert check_f4_coverage(snapshot_of(views), net) == []

    def test_uncovered_visible_node_fails(self):
        net = self.build_network()
        uncovered = NodeView(
            node_id=2,
            position=Vec2(30, 0),
            status=NodeStatus.BOOTUP,
            alive=True,
            is_big=False,
            cell_axial=None,
            current_il=None,
            oil=None,
            icc_icp=(0, 0),
            parent_id=None,
            hops_to_root=0,
            head_id=None,
            is_candidate=False,
        )
        views = simple_tree() + [uncovered]
        violations = check_f4_coverage(snapshot_of(views), net)
        assert any("belongs to no cell" in v for v in violations)
