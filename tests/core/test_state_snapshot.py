"""Unit tests for protocol state, snapshots, and the runtime wiring."""

import math

import pytest

from repro.core import (
    GS3Config,
    Gs3Runtime,
    Gs3Simulation,
    NodeStatus,
    ProtocolState,
    take_snapshot,
)
from repro.core.messages import (
    HeadAssignment,
    HeadIntraAlive,
    HeadSet,
    Org,
)
from repro.geometry import Vec2
from repro.net import Network, uniform_disk
from repro.sim import RngStreams

CFG = GS3Config(ideal_radius=100.0, radius_tolerance=25.0)


class TestNodeStatus:
    def test_head_like(self):
        assert NodeStatus.HEAD.is_head_like
        assert NodeStatus.WORK.is_head_like

    def test_not_head_like(self):
        for status in (
            NodeStatus.BOOTUP,
            NodeStatus.ASSOCIATE,
            NodeStatus.BIG_SLIDE,
            NodeStatus.BIG_MOVE,
        ):
            assert not status.is_head_like


class TestProtocolState:
    def test_defaults(self):
        state = ProtocolState()
        assert state.status is NodeStatus.BOOTUP
        assert state.cell_axial is None
        assert state.children == set()

    def test_reset_clears_everything(self):
        state = ProtocolState()
        state.status = NodeStatus.WORK
        state.cell_axial = (1, 2)
        state.children = {5, 6}
        state.head_id = 9
        state.is_candidate = True
        state.root_position = Vec2(1, 1)
        state.reset()
        assert state.status is NodeStatus.BOOTUP
        assert state.cell_axial is None
        assert state.children == set()
        assert state.head_id is None
        assert not state.is_candidate
        assert state.root_position is None


class TestMessages:
    def test_messages_are_frozen(self):
        msg = Org(
            sender=1,
            head_position=Vec2(0, 0),
            il=Vec2(0, 0),
            axial=(0, 0),
            icc_icp=(0, 0),
            hops_to_root=0,
        )
        with pytest.raises(Exception):
            msg.sender = 2

    def test_headset_assignments(self):
        assignment = HeadAssignment(
            node_id=5, position=Vec2(1, 1), il=Vec2(0, 0), axial=(1, 0)
        )
        msg = HeadSet(
            sender=1,
            organizer_position=Vec2(0, 0),
            organizer_il=Vec2(0, 0),
            organizer_axial=(0, 0),
            organizer_icc_icp=(0, 0),
            organizer_hops=0,
            assignments=(assignment,),
        )
        assert msg.assignments[0].node_id == 5

    def test_intra_alive_defaults(self):
        msg = HeadIntraAlive(
            sender=1,
            position=Vec2(0, 0),
            axial=(0, 0),
            oil=Vec2(0, 0),
            current_il=Vec2(0, 0),
            icc_icp=(0, 0),
            candidates=(2, 3),
            hops_to_root=0,
        )
        assert msg.root_position is None
        assert msg.candidates == (2, 3)


class TestRuntime:
    def test_build_anchors_lattice_at_big_node(self):
        network = Network(cell_size=100.0)
        network.add_node(Vec2(50.0, -20.0), 300.0, is_big=True)
        runtime = Gs3Runtime.build(network, CFG, seed=3)
        assert runtime.lattice.origin == Vec2(50.0, -20.0)
        assert runtime.lattice.spacing == pytest.approx(
            math.sqrt(3) * CFG.ideal_radius
        )

    def test_gr_direction_unit(self):
        network = Network(cell_size=100.0)
        network.add_node(Vec2(0, 0), 300.0, is_big=True)
        runtime = Gs3Runtime.build(network, CFG)
        assert runtime.gr_direction.norm() == pytest.approx(1.0)

    def test_trace_stamps_time(self):
        network = Network(cell_size=100.0)
        network.add_node(Vec2(0, 0), 300.0, is_big=True)
        runtime = Gs3Runtime.build(network, CFG)
        runtime.sim.schedule(5.0, lambda: runtime.trace("x", node=0))
        runtime.sim.run()
        [record] = list(runtime.tracer.by_category("x"))
        assert record.time == 5.0


class TestSnapshot:
    @pytest.fixture(scope="class")
    def snap(self):
        deployment = uniform_disk(300.0, 1000, RngStreams(91))
        sim = Gs3Simulation.from_deployment(deployment, CFG, seed=91)
        sim.run_to_quiescence()
        return sim.snapshot()

    def test_views_cover_all_nodes(self, snap):
        assert len(snap.views) == 1001

    def test_heads_and_associates_partition(self, snap):
        head_ids = set(snap.heads)
        associate_ids = set(snap.associates)
        assert head_ids.isdisjoint(associate_ids)
        assert (
            len(head_ids) + len(associate_ids) + len(snap.bootup_ids)
            == 1001
        )

    def test_cells_mapping(self, snap):
        for head_id, members in snap.cells.items():
            for member in members:
                assert snap.views[member].head_id == head_id

    def test_cell_radius_of(self, snap):
        for head_id in snap.heads:
            radius = snap.cell_radius_of(head_id)
            assert radius >= 0.0

    def test_roots(self, snap):
        assert snap.roots == [snap.big_id]

    def test_member_count(self, snap):
        assert snap.member_count() == len(snap.heads) + len(
            snap.associates
        )

    def test_neighbor_heads_of(self, snap):
        big = snap.heads[snap.big_id]
        neighbors = snap.neighbor_heads_of(snap.big_id)
        assert len(neighbors) == 6
        for n in neighbors:
            assert n.cell_axial in snap.lattice.neighbors(big.cell_axial)
