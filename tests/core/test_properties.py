"""Property-based tests: GS3-S invariants over random configurations.

Hypothesis drives the geometric parameters and the deployment seed;
after every configuration the paper's invariant must hold.  Networks
are kept small so each example runs in well under a second.
"""

import math

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import (
    GS3Config,
    Gs3Simulation,
    check_i1_tree,
    check_i2_children,
    check_i2_neighbors,
    check_i3_associate_optimality,
)
from repro.net import uniform_disk
from repro.sim import RngStreams

SMALL_EXAMPLES = settings(
    max_examples=12,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def configure(seed: int, ideal_radius: float, tolerance_ratio: float):
    config = GS3Config(
        ideal_radius=ideal_radius,
        radius_tolerance=tolerance_ratio * ideal_radius,
    )
    # ~2.2 cell bands, dense enough that R_t-gaps are unlikely.
    field_radius = 2.2 * ideal_radius
    n_nodes = 400
    deployment = uniform_disk(field_radius, n_nodes, RngStreams(seed))
    sim = Gs3Simulation.from_deployment(deployment, config, seed=seed)
    sim.run_to_quiescence()
    return sim, config


class TestConfigurationProperties:
    @SMALL_EXAMPLES
    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        ideal_radius=st.floats(min_value=40.0, max_value=150.0),
        tolerance_ratio=st.floats(min_value=0.15, max_value=0.35),
    )
    def test_invariants_hold_for_any_configuration(
        self, seed, ideal_radius, tolerance_ratio
    ):
        sim, config = configure(seed, ideal_radius, tolerance_ratio)
        snapshot = sim.snapshot()
        assert check_i1_tree(snapshot) == []
        assert check_i2_neighbors(snapshot) == []
        assert check_i2_children(snapshot) == []
        assert check_i3_associate_optimality(snapshot) == []

    @SMALL_EXAMPLES
    @given(seed=st.integers(min_value=0, max_value=10_000))
    def test_every_head_within_tolerance_of_its_il(self, seed):
        sim, config = configure(seed, 100.0, 0.25)
        for view in sim.snapshot().heads.values():
            assert view.position.distance_to(view.current_il) <= (
                config.radius_tolerance + 1e-6
            )

    @SMALL_EXAMPLES
    @given(seed=st.integers(min_value=0, max_value=10_000))
    def test_axials_unique_and_ils_on_lattice(self, seed):
        sim, config = configure(seed, 100.0, 0.25)
        snapshot = sim.snapshot()
        axials = [v.cell_axial for v in snapshot.heads.values()]
        assert len(axials) == len(set(axials))
        for view in snapshot.heads.values():
            assert view.current_il.is_close(
                snapshot.lattice.point(view.cell_axial), tol=1e-6
            )

    @SMALL_EXAMPLES
    @given(seed=st.integers(min_value=0, max_value=10_000))
    def test_every_classified_node_has_live_head(self, seed):
        sim, _ = configure(seed, 100.0, 0.25)
        snapshot = sim.snapshot()
        for view in snapshot.associates.values():
            assert view.head_id in snapshot.heads
