"""Integration tests for GS3-D: self-healing in dynamic networks.

Each test configures a network, injects one of the paper's
perturbations (join, leave, death, region kill, corruption), lets the
protocol heal, and asserts the invariant/fixpoint predicates plus the
paper's locality claims.
"""

import math

import pytest

from repro.core import (
    GS3Config,
    Gs3DynamicSimulation,
    NodeStatus,
    check_i1_tree,
    check_static_fixpoint,
    check_static_invariant,
)
from repro.geometry import Vec2
from repro.net import EnergyConfig, uniform_disk
from repro.sim import RngStreams

CFG = GS3Config(ideal_radius=100.0, radius_tolerance=25.0)


def configure(seed=7, n_nodes=620, field_radius=230.0, config=CFG):
    deployment = uniform_disk(field_radius, n_nodes, RngStreams(seed))
    sim = Gs3DynamicSimulation.from_deployment(deployment, config, seed=seed)
    sim.run_until_stable(window=60.0, max_time=5000.0)
    return sim, deployment


@pytest.fixture(scope="module")
def configured():
    return configure()


class TestDynamicConfiguration:
    def test_reaches_fixpoint(self, configured):
        sim, deployment = configured
        snap = sim.snapshot()
        assert (
            check_static_fixpoint(
                snap, sim.network, field=deployment.field, dynamic=True
            )
            == []
        )

    def test_no_bootup_nodes(self, configured):
        sim, _ = configured
        assert len(sim.snapshot().bootup_ids) == 0

    def test_heartbeats_flow(self, configured):
        sim, _ = configured
        before = sim.tracer.count("msg.broadcast")
        sim.run_for(50.0)
        assert sim.tracer.count("msg.broadcast") > before


class TestHeadLeave:
    def test_head_shift_masks_leave(self):
        # Killing one head is healed *within the cell*: a candidate
        # claims headship and the cell's axial stays occupied.
        sim, deployment = configure(seed=21)
        snap = sim.snapshot()
        victim = next(v for v in snap.heads.values() if not v.is_big)
        kill_time = sim.now
        sim.kill_node(victim.node_id)
        sim.run_until_stable(window=100.0, max_time=sim.now + 20000.0)
        healed = sim.snapshot()
        assert victim.cell_axial in healed.head_by_axial
        new_head = healed.head_by_axial[victim.cell_axial]
        assert new_head.node_id != victim.node_id
        assert (
            check_static_fixpoint(
                healed, sim.network, field=deployment.field, dynamic=True
            )
            == []
        )

    def test_healing_is_local(self):
        # Heads far from the victim keep their cell and parent cell.
        sim, _ = configure(seed=22)
        snap = sim.snapshot()
        victim = next(v for v in snap.heads.values() if not v.is_big)

        def tree_edges(s):
            return {
                v.cell_axial: (
                    s.heads[v.parent_id].cell_axial
                    if v.parent_id in s.heads
                    else None
                )
                for v in s.heads.values()
            }

        before = tree_edges(snap)
        sim.kill_node(victim.node_id)
        sim.run_until_stable(window=100.0, max_time=sim.now + 20000.0)
        after = tree_edges(sim.snapshot())
        far_changed = []
        from repro.geometry import hex_distance

        for axial, parent in after.items():
            if axial in before and before[axial] != parent:
                if hex_distance(axial, victim.cell_axial) > 2:
                    far_changed.append(axial)
        assert far_changed == []

    def test_associate_leave_invisible(self):
        # A plain associate leaving changes nothing structural.
        sim, _ = configure(seed=23)
        snap = sim.snapshot()
        victim = next(
            v
            for v in snap.associates.values()
            if not v.is_candidate and v.head_id is not None
        )
        heads_before = set(snap.heads)
        sim.kill_node(victim.node_id)
        sim.run_for(300.0)
        assert set(sim.snapshot().heads) == heads_before


class TestRegionKill:
    def test_region_heals_and_remains_covered(self):
        sim, deployment = configure(seed=31, n_nodes=850, field_radius=270.0)
        kill_radius = 80.0
        sim.kill_region(Vec2(140.0, 0.0), kill_radius)
        sim.run_until_stable(window=150.0, max_time=sim.now + 30000.0)
        snap = sim.snapshot()
        violations = check_static_fixpoint(
            snap,
            sim.network,
            field=deployment.field,
            gap_axials=sim.gap_axials(),
            dynamic=True,
            # I2.4's d_p: boundary cells adjoining the killed area may
            # stretch by its diameter.
            gap_diameter=2.0 * kill_radius,
        )
        assert violations == []
        assert len(snap.bootup_ids) == 0


class TestNodeJoin:
    def test_new_node_joins_closest_head(self, configured):
        sim, _ = configured
        snap = sim.snapshot()
        target = next(iter(snap.heads.values()))
        position = target.position + Vec2(30.0, 10.0)
        node_id = sim.add_node(position)
        sim.run_for(5.0 * CFG.join_retry_interval)
        state = sim.runtime.nodes[node_id].state
        assert state.status is NodeStatus.ASSOCIATE
        assert state.head_id is not None

    def test_rejoin_after_leave(self):
        sim, _ = configure(seed=41)
        snap = sim.snapshot()
        victim = next(
            v for v in snap.associates.values() if not v.is_candidate
        )
        sim.kill_node(victim.node_id)
        sim.run_for(100.0)
        sim.revive_node(victim.node_id)
        sim.run_for(10.0 * CFG.join_retry_interval)
        state = sim.runtime.nodes[victim.node_id].state
        assert state.status is NodeStatus.ASSOCIATE

    def test_structure_unchanged_by_join(self, configured):
        sim, _ = configured
        heads_before = {
            v.cell_axial for v in sim.snapshot().heads.values()
        }
        sim.add_node(Vec2(50.0, 50.0))
        sim.run_for(200.0)
        heads_after = {v.cell_axial for v in sim.snapshot().heads.values()}
        assert heads_before == heads_after


class TestStateCorruption:
    def test_sanity_check_heals_corruption(self):
        sim, deployment = configure(seed=51)
        snap = sim.snapshot()
        victim = next(v for v in snap.heads.values() if not v.is_big)
        sim.corrupt_node(victim.node_id)
        sim.run_until_stable(window=120.0, max_time=sim.now + 30000.0)
        assert sim.tracer.count("sanity.reset") >= 1
        healed = sim.snapshot()
        assert (
            check_static_invariant(
                healed, sim.network, field=deployment.field, dynamic=True
            )
            == []
        )

    @pytest.mark.slow
    def test_corruption_not_healed_without_sanity_check(self):
        config = GS3Config(
            ideal_radius=100.0,
            radius_tolerance=25.0,
            enable_sanity_check=False,
        )
        sim, _ = configure(seed=52, config=config)
        snap = sim.snapshot()
        victim = next(v for v in snap.heads.values() if not v.is_big)
        sim.corrupt_node(victim.node_id)
        sim.run_for(1000.0)
        assert sim.tracer.count("sanity.reset") == 0


class TestEnergyDrivenDeath:
    def make_energy_sim(self, enable_cell_shift):
        config = GS3Config(
            ideal_radius=100.0,
            radius_tolerance=25.0,
            enable_cell_shift=enable_cell_shift,
        )
        sim, deployment = configure(
            seed=61, n_nodes=550, field_radius=210.0, config=config
        )
        sim.attach_energy(
            EnergyConfig(
                initial=2000.0,
                head_drain=10.0,
                candidate_drain=0.5,
                associate_drain=0.2,
            )
        )
        return sim

    @pytest.mark.slow
    def test_cell_shift_slides_structure(self):
        sim = self.make_energy_sim(enable_cell_shift=True)
        sim.run_for(2500.0)
        assert sim.tracer.count("cell.shift") > 0
        snap = sim.snapshot()
        # Cells that shifted share <ICC, ICP> addresses from the common
        # deterministic spiral.
        shifted = [v for v in snap.heads.values() if v.icc_icp != (0, 0)]
        assert shifted
        for view in shifted:
            assert view.icc_icp[0] >= 1

    @pytest.mark.slow
    def test_head_graph_survives_repeated_head_deaths(self):
        sim = self.make_energy_sim(enable_cell_shift=True)
        sim.run_for(2500.0)
        # Pause the drain and let in-flight transitions settle before
        # judging the tree (mid-churn snapshots are legitimately
        # inconsistent for up to a failure timeout).
        sim.detach_energy()
        sim.run_until_stable(window=120.0, max_time=sim.now + 20000.0)
        snap = sim.snapshot()
        assert check_i1_tree(snap) == []
        assert len(snap.heads) >= 5

    def test_energy_roles_drain_heads_fastest(self):
        sim = self.make_energy_sim(enable_cell_shift=True)
        sim.run_for(500.0)
        snap = sim.snapshot()
        head_energy = [
            sim.energy.remaining(h) for h in snap.heads if h != 0
        ]
        associate_energy = [
            sim.energy.remaining(a)
            for a, v in snap.associates.items()
            if not v.is_candidate
        ]
        if head_energy and associate_energy:
            assert min(associate_energy) > 0
            # Continuing heads have drained more than the typical
            # associate.
            assert min(head_energy) < max(associate_energy)


class TestBigSlide:
    @pytest.mark.slow
    def test_big_node_hands_over_and_structure_survives(self):
        config = GS3Config(
            ideal_radius=100.0, radius_tolerance=25.0, min_candidates=1
        )
        sim, _ = configure(seed=71, n_nodes=550, field_radius=210.0, config=config)
        big = sim.network.big_id
        # Kill every candidate of the central cell so it must shift,
        # putting the big node into BIG_SLIDE.
        big_node = sim.runtime.nodes[big]
        for candidate in list(big_node.state.candidate_ids):
            sim.kill_node(candidate)
        sim.run_for(2000.0)
        snap = sim.snapshot()
        big_view = snap.views[big]
        if big_view.status is NodeStatus.BIG_SLIDE:
            # The root role was delegated: exactly one root, big's cell
            # still headed.
            assert len(snap.roots) == 1
            assert check_i1_tree(snap) == []
        else:
            # The big node kept or regained headship; tree must be sane.
            assert check_i1_tree(snap) == []
