"""Unit tests for module HEAD_SELECT (Figure 3)."""

import math

import pytest

from repro.core import (
    drifted_candidate_ils,
    head_select,
    neighbor_candidate_ils,
    rank_candidates,
)
from repro.geometry import HexLattice, Vec2

R = 100.0
RT = 25.0
SPACING = math.sqrt(3) * R
GR = Vec2(1, 0)


@pytest.fixture
def lattice():
    return HexLattice(Vec2(0, 0), SPACING, orientation=0.0)


class TestNeighborCandidateIls:
    def test_root_gets_six(self, lattice):
        ils = neighbor_candidate_ils(lattice, (0, 0), None)
        assert len(ils) == 6
        for _, il in ils:
            assert il.norm() == pytest.approx(SPACING)

    def test_root_by_self_parent(self, lattice):
        assert len(neighbor_candidate_ils(lattice, (0, 0), (0, 0))) == 6

    def test_non_root_gets_three_forward(self, lattice):
        # Head at (1, 0) selected by parent at origin: forward is +q.
        ils = neighbor_candidate_ils(lattice, (1, 0), (0, 0))
        assert len(ils) == 3
        axials = {axial for axial, _ in ils}
        assert axials == {(2, -1), (2, 0), (1, 1)}

    def test_forward_ils_at_sixty_degrees(self, lattice):
        ils = neighbor_candidate_ils(lattice, (1, 0), (0, 0))
        origin = lattice.point((1, 0))
        angles = sorted(
            round(math.degrees((il - origin).angle())) for _, il in ils
        )
        assert angles == [-60, 0, 60]

    def test_ils_are_exact_lattice_points(self, lattice):
        for axial, il in neighbor_candidate_ils(lattice, (2, -1), (1, 0)):
            assert il.is_close(lattice.point(axial), tol=1e-9)

    def test_non_adjacent_parent_rejected(self, lattice):
        with pytest.raises(ValueError):
            neighbor_candidate_ils(lattice, (2, 0), (0, 0))


class TestDriftedCandidateIls:
    def test_matches_exact_when_no_deviation(self, lattice):
        exact = dict(neighbor_candidate_ils(lattice, (1, 0), (0, 0)))
        drifted = dict(
            drifted_candidate_ils(
                lattice.point((1, 0)),
                lattice.point((0, 0)),
                (1, 0),
                (0, 0),
                SPACING,
                GR,
            )
        )
        assert exact.keys() == drifted.keys()
        for axial in exact:
            assert exact[axial].is_close(drifted[axial], tol=1e-6)

    def test_root_matches_exact_when_no_deviation(self, lattice):
        exact = dict(neighbor_candidate_ils(lattice, (0, 0), None))
        drifted = dict(
            drifted_candidate_ils(
                Vec2(0, 0), None, (0, 0), None, SPACING, GR
            )
        )
        for axial in exact:
            assert exact[axial].is_close(drifted[axial], tol=1e-6)

    def test_deviation_propagates(self, lattice):
        # Head 10 units off its IL: drifted ILs shift by the same 10.
        offset = Vec2(10.0, 0.0)
        drifted = dict(
            drifted_candidate_ils(
                lattice.point((1, 0)) + offset,
                lattice.point((0, 0)),
                (1, 0),
                (0, 0),
                SPACING,
                GR,
            )
        )
        exact = dict(neighbor_candidate_ils(lattice, (1, 0), (0, 0)))
        forward = (2, 0)
        deviation = drifted[forward] - exact[forward]
        assert deviation.norm() > 5.0


class TestRankCandidates:
    IL = Vec2(0, 0)

    def test_closest_wins(self):
        ranked = rank_candidates(
            self.IL, [(1, Vec2(10, 0)), (2, Vec2(5, 0))], GR
        )
        assert ranked[0][0] == 2

    def test_angle_magnitude_tiebreak(self):
        ranked = rank_candidates(
            self.IL, [(1, Vec2(0, 10)), (2, Vec2(10, 0))], GR
        )
        assert ranked[0][0] == 2  # aligned with GR beats 90 degrees off

    def test_clockwise_preferred(self):
        d = 10.0 / math.sqrt(2)
        ranked = rank_candidates(
            self.IL, [(1, Vec2(d, d)), (2, Vec2(d, -d))], GR
        )
        assert ranked[0][0] == 2  # negative angle (clockwise) wins

    def test_id_breaks_exact_ties(self):
        ranked = rank_candidates(
            self.IL, [(5, Vec2(3, 0)), (2, Vec2(3, 0))], GR
        )
        assert ranked[0][0] == 2


class TestHeadSelect:
    def ils(self, lattice):
        return neighbor_candidate_ils(lattice, (0, 0), None)

    def test_selects_node_in_each_candidate_area(self, lattice):
        small = []
        expected = {}
        for i, (axial, il) in enumerate(self.ils(lattice)):
            node_id = 100 + i
            small.append((node_id, il + Vec2(3.0, 0)))
            expected[axial] = node_id
        result = head_select(self.ils(lattice), set(), small, RT, GR)
        assert {a: n for a, _, n, _ in result.assignments} == expected
        assert result.gap_axials == ()

    def test_empty_area_is_gap(self, lattice):
        result = head_select(self.ils(lattice), set(), [], RT, GR)
        assert len(result.gap_axials) == 6
        assert result.assignments == ()

    def test_occupied_axials_skipped(self, lattice):
        candidate_ils = self.ils(lattice)
        axial0, il0 = candidate_ils[0]
        small = [(1, il0)]
        result = head_select(candidate_ils, {axial0}, small, RT, GR)
        assert all(a != axial0 for a, _, _, _ in result.assignments)
        # Not reported as a gap either: it's occupied, not empty.
        assert axial0 not in result.gap_axials

    def test_node_out_of_tolerance_not_selected(self, lattice):
        candidate_ils = self.ils(lattice)
        _, il0 = candidate_ils[0]
        small = [(1, il0 + Vec2(RT + 1.0, 0))]
        result = head_select(candidate_ils[:1], set(), small, RT, GR)
        assert result.assignments == ()
        assert len(result.gap_axials) == 1

    def test_highest_ranked_selected(self, lattice):
        candidate_ils = self.ils(lattice)[:1]
        _, il0 = candidate_ils[0]
        small = [
            (1, il0 + Vec2(10.0, 0)),
            (2, il0 + Vec2(2.0, 0)),
            (3, il0 + Vec2(20.0, 0)),
        ]
        result = head_select(candidate_ils, set(), small, RT, GR)
        assert result.assignments[0][2] == 2

    def test_node_not_selected_twice(self, lattice):
        # One node within R_t of two candidate ILs can head only one cell.
        il_a = Vec2(0, 0)
        il_b = Vec2(RT, 0)  # artificially close ILs
        shared = [(1, Vec2(RT / 2, 0))]
        result = head_select(
            [((1, 0), il_a), ((0, 1), il_b)], set(), shared, RT, GR
        )
        assert len(result.assignments) == 1

    def test_selection_is_deterministic(self, lattice):
        small = [(i, Vec2(170 + i, i)) for i in range(5)]
        first = head_select(self.ils(lattice), set(), small, RT, GR)
        second = head_select(self.ils(lattice), set(), small, RT, GR)
        assert first == second
