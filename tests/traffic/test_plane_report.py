"""Forwarding plane semantics and the traffic report."""

import pytest

from repro.core import GS3Config, Gs3DynamicSimulation
from repro.net import grid_jitter
from repro.sim import RngStreams
from repro.traffic import (
    ForwardingPlane,
    Packet,
    TERMINAL_OUTCOMES,
    build_traffic_report,
    percentile,
    run_traffic_replicate,
)

CFG = GS3Config(ideal_radius=100.0, radius_tolerance=25.0)


@pytest.fixture(scope="module")
def configured():
    deployment = grid_jitter(240.0, 40.0, 6.0, RngStreams(77))
    sim = Gs3DynamicSimulation.from_deployment(deployment, CFG, seed=77)
    sim.run_until_stable(window=60.0, max_time=20_000.0)
    return sim


def _packet(network, pid, src, dst, created_at):
    pos = network.node(dst).position
    return Packet(
        pid=pid,
        kind="p2p",
        created_at=created_at,
        src=src,
        dst=dst,
        dst_pos=(pos.x, pos.y),
    )


def _far_pair(network):
    """Two alive small nodes more than one radio hop apart."""
    nodes = sorted(
        (n for n in network.alive_nodes() if not n.is_big),
        key=lambda n: n.position.x,
    )
    west, east = nodes[0], nodes[-1]
    assert west.position.distance_to(east.position) > 2.0 * 150.0
    return west.node_id, east.node_id


class TestForwardingPlane:
    def test_delivery_paths_are_well_formed(self, configured):
        sim = configured
        plane = ForwardingPlane(sim.runtime, {"router": "cell"})
        src, dst = _far_pair(sim.network)
        packet = _packet(sim.network, 9001, src, dst, sim.now)
        plane.inject(packet)
        sim.run_for(200.0)
        outcome, time, path = plane.records[9001]
        assert outcome == "delivered"
        assert path[0] == src
        assert path[-1] == dst
        assert len(path) == len(set(path))
        assert time > packet.created_at  # hops cost virtual time
        sim.runtime.radio.data_plane = None

    def test_ttl_expiry(self, configured):
        sim = configured
        plane = ForwardingPlane(
            sim.runtime, {"router": "cell", "ttl": 1}
        )
        src, dst = _far_pair(sim.network)
        plane.inject(_packet(sim.network, 9002, src, dst, sim.now))
        sim.run_for(200.0)
        outcome = plane.records[9002][0]
        assert outcome == "ttl_expired"
        sim.runtime.radio.data_plane = None

    def test_source_dead(self, configured):
        sim = configured
        plane = ForwardingPlane(sim.runtime, {"router": "cell"})
        src, dst = _far_pair(sim.network)
        sim.kill_node(src)
        plane.inject(_packet(sim.network, 9003, src, dst, sim.now))
        assert plane.records[9003][0] == "source_dead"
        sim.revive_node(src)
        sim.run_for(300.0)
        sim.runtime.radio.data_plane = None

    def test_self_addressed_delivers_immediately(self, configured):
        sim = configured
        plane = ForwardingPlane(sim.runtime, {"router": "cell"})
        src, _ = _far_pair(sim.network)
        plane.inject(_packet(sim.network, 9004, src, src, sim.now))
        outcome, _, path = plane.records[9004]
        assert outcome == "delivered"
        assert path == (src,)
        sim.runtime.radio.data_plane = None


class TestReplicateConservation:
    @pytest.fixture(scope="class")
    def outcome(self):
        from repro.sim import replicate_seed

        data = {
            "config": {"ideal_radius": 100.0, "radius_tolerance": 25.0},
            "deployment": {
                "kind": "uniform",
                "field_radius": 300.0,
                "n_nodes": 160,
            },
            "traffic": {
                "duration": 120.0,
                "drain": 120.0,
                "flows": {"rate": 0.15},
                "convergecast": {"rate": 0.08},
                "cbr": {"sources": 3, "interval": 30.0},
            },
        }
        result = run_traffic_replicate(
            {"data": data, "seed": replicate_seed(21, 0)}
        )
        assert "error" not in result["routers"]["cell"]
        return result

    def test_every_packet_accounted(self, outcome):
        for report in outcome["routers"].values():
            outcomes = report["outcomes"]
            total = sum(outcomes[k] for k in TERMINAL_OUTCOMES)
            assert total + outcomes["missing"] == report["generated"]

    def test_both_routers_ran_same_workload(self, outcome):
        reports = list(outcome["routers"].values())
        assert len(reports) == 2
        assert reports[0]["generated"] == reports[1]["generated"]
        assert outcome["generated"] == reports[0]["generated"]

    def test_report_shape(self, outcome):
        report = outcome["routers"]["cell"]
        assert set(report["delay"]) == {"mean", "p50", "p90", "p99", "max"}
        assert set(report["stretch"]) == {"p50", "p90", "max"}
        assert set(report["hops"]) == {"mean", "max"}
        assert report["delivery_ratio"] > 0.8  # no chaos: healthy
        assert report["stretch"]["p50"] >= 1.0 or report["stretch"]["p50"] == 0.0
        relay = report["relay"]
        assert relay["max_load"] >= max(
            (h["load"] for h in relay["top_hotspots"]), default=0
        )

    def test_by_kind_totals(self, outcome):
        report = outcome["routers"]["cell"]
        assert (
            sum(k["generated"] for k in report["by_kind"].values())
            == report["generated"]
        )


class TestPercentile:
    def test_empty_is_zero(self):
        assert percentile([], 0.5) == 0.0

    def test_nearest_rank(self):
        values = [1.0, 2.0, 3.0, 4.0]
        assert percentile(values, 0.50) == 2.0
        assert percentile(values, 0.75) == 3.0
        assert percentile(values, 0.99) == 4.0

    def test_single_value(self):
        assert percentile([7.0], 0.99) == 7.0


class TestReportEdgeCases:
    def test_empty_workload(self, configured):
        report = build_traffic_report([], {}, {}, configured.network)
        assert report["generated"] == 0
        assert report["delivery_ratio"] == 0.0
        assert report["outcomes"]["missing"] == 0
