"""Scenario traffic-block plumbing and the ``repro traffic`` command."""

import json

import pytest

from repro.cli import build_parser, main
from repro.scenario import Scenario
from repro.sim import canonical_digest
from repro.traffic import TrafficConfig


def scenario_data(**overrides):
    data = {
        "seed": 5,
        "config": {"ideal_radius": 100.0, "radius_tolerance": 25.0},
        "deployment": {
            "kind": "uniform",
            "field_radius": 230.0,
            "n_nodes": 550,
        },
        "perturbations": [],
        "settle_window": 100.0,
    }
    data.update(overrides)
    return data


TRAFFIC = {
    "duration": 120.0,
    "flows": {"rate": 0.1},
    "cbr": {"sources": 2, "interval": 30.0},
}


class TestScenarioTrafficBlock:
    def test_parsed_into_config(self):
        scenario = Scenario.from_dict(scenario_data(traffic=TRAFFIC))
        assert isinstance(scenario.traffic, TrafficConfig)
        assert scenario.traffic.p2p_rate == 0.1

    def test_absent_means_none(self):
        assert Scenario.from_dict(scenario_data()).traffic is None

    def test_roundtrip(self):
        scenario = Scenario.from_dict(scenario_data(traffic=TRAFFIC))
        again = Scenario.from_dict(scenario.to_dict())
        assert again.traffic == scenario.traffic

    def test_digest_relevant(self):
        plain = Scenario.from_dict(scenario_data())
        with_traffic = Scenario.from_dict(scenario_data(traffic=TRAFFIC))
        assert canonical_digest(plain.to_dict()) != canonical_digest(
            with_traffic.to_dict()
        )

    def test_bad_traffic_block_rejected_at_parse_time(self):
        with pytest.raises(ValueError, match="unknown traffic keys"):
            Scenario.from_dict(scenario_data(traffic={"nope": 1}))


class TestTrafficCommand:
    def _write(self, tmp_path, data):
        path = tmp_path / "traffic.json"
        path.write_text(json.dumps(data))
        return str(path)

    def _data(self):
        return {
            "seed": 21,
            "config": {"ideal_radius": 100.0, "radius_tolerance": 25.0},
            "deployment": {
                "kind": "uniform",
                "field_radius": 300.0,
                "n_nodes": 160,
            },
            "traffic": {
                "duration": 80.0,
                "drain": 80.0,
                "flows": {"rate": 0.1},
                "cbr": {"sources": 2, "interval": 30.0},
            },
        }

    def test_parser_defaults(self):
        args = build_parser().parse_args(["traffic", "t.json"])
        assert args.command == "traffic"
        assert args.replicates == 1
        assert args.router is None  # None = use the scenario's routers

    def test_missing_traffic_block_exits_2(self, tmp_path):
        path = self._write(
            tmp_path,
            {k: v for k, v in self._data().items() if k != "traffic"},
        )
        assert main(["traffic", path, "--workers", "0"]) == 2

    def test_smoke_run_writes_report(self, tmp_path, capsys):
        path = self._write(tmp_path, self._data())
        out = tmp_path / "report.json"
        code = main(
            [
                "traffic",
                path,
                "--workers",
                "0",
                "--json",
                str(out),
            ]
        )
        assert code == 0
        report = json.loads(out.read_text())
        assert report["provenance"]["kind"] == "traffic"
        assert set(report["summary"]["routers"]) == {"cell", "hybrid"}
        for stats in report["summary"]["routers"].values():
            assert stats["generated"] > 0
            assert 0.0 <= stats["delivery_ratio"] <= 1.0
        table = capsys.readouterr().out
        assert "delivery" in table

    def test_router_flag_narrows_race(self, tmp_path):
        path = self._write(tmp_path, self._data())
        out = tmp_path / "report.json"
        code = main(
            [
                "traffic",
                path,
                "--workers",
                "0",
                "--router",
                "hybrid",
                "--json",
                str(out),
            ]
        )
        assert code == 0
        report = json.loads(out.read_text())
        assert set(report["summary"]["routers"]) == {"hybrid"}
