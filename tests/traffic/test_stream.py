"""Streamed records: JSONL spill, torn-tail recovery, replicate resume."""

import glob
import json
import os

import pytest

from repro.traffic import JsonlRecordStream, run_traffic_replicate

BASE = {
    "config": {"ideal_radius": 100.0, "radius_tolerance": 25.0},
    "deployment": {
        "kind": "uniform",
        "field_radius": 260.0,
        "n_nodes": 140,
    },
    "channel": {"bernoulli_loss": 0.05, "latency_jitter": 0.3},
    "traffic": {
        "duration": 40.0,
        "drain": 60.0,
        "routers": ["cell"],
        "flows": {"rate": 0.15},
        "burst": {"rate": 0.1, "size": 4},
    },
}


def _canon(result):
    return json.dumps(result, sort_keys=True)


class TestJsonlRecordStream:
    def test_round_trip(self, tmp_path):
        path = str(tmp_path / "records.jsonl")
        with JsonlRecordStream(path, batch=2) as stream:
            assert stream.add_hop(0, 0, 5, 1.0, 2.0)
            assert stream.add_hop(0, 1, 6, 3.0, 4.0)
            assert stream.add_terminal(0, "delivered", 7.5)
        with JsonlRecordStream(path) as stream:
            entries = list(stream.replay())
        assert entries == [
            ("h", 0, 0, 5, 1.0, 2.0),
            ("h", 0, 1, 6, 3.0, 4.0),
            ("t", 0, "delivered", 7.5),
        ]

    def test_dedupes_hops_and_terminals(self, tmp_path):
        path = str(tmp_path / "records.jsonl")
        with JsonlRecordStream(path) as stream:
            assert stream.add_hop(1, 0, 5, 0.0, 0.0)
            assert not stream.add_hop(1, 0, 5, 0.0, 0.0)
            assert stream.add_terminal(1, "dropped", 3.0)
            assert not stream.add_terminal(1, "ttl_expired", 4.0)

    def test_delivered_upgrades_but_never_downgrades(self, tmp_path):
        path = str(tmp_path / "records.jsonl")
        with JsonlRecordStream(path) as stream:
            assert stream.add_terminal(1, "dropped", 3.0)
            assert stream.add_terminal(1, "delivered", 5.0)
            assert not stream.add_terminal(1, "dropped", 6.0)
            assert not stream.add_terminal(1, "delivered", 7.0)
        # Both lines persist; the fold's upgrade rule makes the later
        # delivered line win on replay.
        with JsonlRecordStream(path) as stream:
            terminals = [e for e in stream.replay() if e[0] == "t"]
        assert terminals == [
            ("t", 1, "dropped", 3.0),
            ("t", 1, "delivered", 5.0),
        ]

    def test_torn_tail_truncated_and_reseeded(self, tmp_path):
        path = str(tmp_path / "records.jsonl")
        with JsonlRecordStream(path) as stream:
            stream.add_hop(0, 0, 5, 1.0, 2.0)
            stream.add_terminal(0, "delivered", 7.5)
        with open(path, "a", encoding="utf-8") as fh:
            fh.write('["h", 1, 0, 9,')  # crash mid-batch: no newline
        stream = JsonlRecordStream(path)
        try:
            # The torn line is gone; intact entries seed the dedupe sets.
            assert stream.seen_hops == {(0, 0)}
            assert stream.seen_terminals == {0: "delivered"}
            assert not stream.add_hop(0, 0, 5, 1.0, 2.0)
            assert stream.add_hop(1, 0, 9, 0.0, 0.0)
            assert len(list(stream.replay())) == 3
        finally:
            stream.close()

    def test_bad_batch_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="batch"):
            JsonlRecordStream(str(tmp_path / "x.jsonl"), batch=0)


class TestStreamedReplicate:
    def test_streamed_report_matches_in_memory(self, tmp_path):
        data = dict(BASE)
        memory = run_traffic_replicate({"data": data, "seed": 47})
        streamed = run_traffic_replicate(
            {"data": data, "seed": 47, "stream_dir": str(tmp_path)}
        )
        assert _canon(memory) == _canon(streamed)
        assert os.path.exists(str(tmp_path / "cell.records.jsonl"))

    def test_interrupted_replicate_resumes_byte_identical(self, tmp_path):
        data = dict(BASE)
        spec = {"data": data, "seed": 47, "stream_dir": str(tmp_path)}
        first = run_traffic_replicate(spec)
        path = glob.glob(str(tmp_path / "*.records.jsonl"))[0]
        size = os.path.getsize(path)
        assert size > 0
        # Simulate a crash mid-write: chop the file mid-line.
        with open(path, "r+b") as fh:
            fh.truncate(size * 2 // 3 + 1)
        resumed = run_traffic_replicate(spec)
        assert _canon(first) == _canon(resumed)
        # The recovered file folds to the same report a fresh run gets.
        fresh = run_traffic_replicate({"data": data, "seed": 47})
        assert _canon(fresh) == _canon(resumed)
