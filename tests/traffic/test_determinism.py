"""Traffic determinism: byte-identical at every worker/shard count."""

import json

import pytest

from repro.traffic import run_traffic_campaigns, run_traffic_replicate

BASE = {
    "config": {"ideal_radius": 100.0, "radius_tolerance": 25.0},
    "deployment": {
        "kind": "uniform",
        "field_radius": 260.0,
        "n_nodes": 140,
    },
    "channel": {"bernoulli_loss": 0.05, "latency_jitter": 0.3},
    "chaos": {
        "duration": 100.0,
        "kill_rate": 0.004,
        "jam_rate": 0.002,
        "jam_radius": 50.0,
        "jam_duration": 50.0,
        "settle_window": 100.0,
        "heal_budget": 20000.0,
    },
    "traffic": {
        "duration": 100.0,
        "drain": 100.0,
        "flows": {"rate": 0.1},
        "convergecast": {"rate": 0.05},
        "cbr": {"sources": 2, "interval": 30.0},
    },
}


def _canon(result):
    return json.dumps(result, sort_keys=True)


class TestShardInvariance:
    @pytest.mark.slow
    def test_shard_count_does_not_change_report(self):
        results = {}
        for shards in (1, 2, 4):
            data = dict(BASE)
            data["shards"] = shards
            results[shards] = _canon(
                run_traffic_replicate({"data": data, "seed": 31})
            )
        assert results[1] == results[2] == results[4]

    def test_repeat_run_is_byte_identical(self):
        data = dict(BASE)
        a = run_traffic_replicate({"data": data, "seed": 31})
        b = run_traffic_replicate({"data": data, "seed": 31})
        assert _canon(a) == _canon(b)
        # And actually exercised the channel under chaos.
        report = a["routers"]["cell"]
        assert report["generated"] > 0


class TestWorkerInvariance:
    def test_worker_count_does_not_change_sweep(self):
        data = dict(BASE)
        del data["chaos"]  # keep the sweep fast: channel faults only
        serial = run_traffic_campaigns(data, replicates=2, workers=0)
        parallel = run_traffic_campaigns(data, replicates=2, workers=2)
        assert [o.ok for o in serial] == [o.ok for o in parallel]
        assert _canon([o.result for o in serial]) == _canon(
            [o.result for o in parallel]
        )


#: Burst workload sized to generate >= 1e4 packets at seed 91.
VOLUME = {
    "config": {"ideal_radius": 100.0, "radius_tolerance": 25.0},
    "deployment": {
        "kind": "uniform",
        "field_radius": 260.0,
        "n_nodes": 140,
    },
    "channel": {"bernoulli_loss": 0.05, "latency_jitter": 0.3},
    "traffic": {
        "duration": 200.0,
        "drain": 150.0,
        "routers": ["cell"],
        "burst": {"rate": 0.55, "size": 100},
    },
}


class TestVolumeDeterminism:
    """>= 1e4 packets through the batched hot path, byte-identical."""

    @pytest.mark.slow
    def test_workers_invariant_at_volume(self):
        serial = run_traffic_campaigns(VOLUME, replicates=1, workers=0)
        parallel = run_traffic_campaigns(VOLUME, replicates=1, workers=2)
        assert serial[0].result["generated"] >= 10_000
        assert _canon([o.result for o in serial]) == _canon(
            [o.result for o in parallel]
        )

    @pytest.mark.slow
    def test_shards_invariant_at_volume(self):
        results = {}
        for shards in (1, 2, 4):
            data = dict(VOLUME)
            data["shards"] = shards
            results[shards] = _canon(
                run_traffic_replicate({"data": data, "seed": 91})
            )
        assert results[1] == results[2] == results[4]
        assert json.loads(results[1])["generated"] >= 10_000
