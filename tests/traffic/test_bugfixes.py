"""Regression pins for the PR-10 traffic accounting fixes.

Four bugs, four pins:

* path geometry read node positions at *report* time, so ``move``
  perturbations after a delivery corrupted its stretch;
* first-terminal-wins in ``_record`` could mask a real delivery behind
  an earlier non-delivered outcome;
* ``run_traffic_replicate`` took ``generated`` from the first router,
  reporting 0 whenever that router failed but others ran;
* data frames must never duplicate even when the channel's
  ``duplicate_prob`` is high (the plane assumes link-layer dedup).
"""

import pytest

from repro.core import GS3Config, Gs3DynamicSimulation
from repro.geometry import Vec2
from repro.net import ChannelFaultModel, Network, Radio, grid_jitter
from repro.sim import RngStreams
from repro.sim.parallel import ReplicateOutcome
from repro.traffic import (
    ForwardingPlane,
    Packet,
    TERMINAL_OUTCOMES,
    fold_traffic_report,
    run_traffic_replicate,
    summarize_traffic,
)
from repro.traffic.report import TrafficFold

CFG = GS3Config(ideal_radius=100.0, radius_tolerance=25.0)


@pytest.fixture(scope="module")
def configured():
    deployment = grid_jitter(240.0, 40.0, 6.0, RngStreams(77))
    sim = Gs3DynamicSimulation.from_deployment(deployment, CFG, seed=77)
    sim.run_until_stable(window=60.0, max_time=20_000.0)
    return sim


def _far_pair(network):
    nodes = sorted(
        (n for n in network.alive_nodes() if not n.is_big),
        key=lambda n: n.position.x,
    )
    return nodes[0].node_id, nodes[-1].node_id


class TestMoveGeometry:
    def test_report_geometry_survives_later_moves(self, configured):
        sim = configured
        plane = ForwardingPlane(sim.runtime, {"router": "cell"})
        src, dst = _far_pair(sim.network)
        pos = sim.network.node(dst).position
        packet = Packet(
            pid=9100,
            kind="p2p",
            created_at=sim.now,
            src=src,
            dst=dst,
            dst_pos=(pos.x, pos.y),
        )
        plane.inject(packet)
        sim.run_for(200.0)
        assert plane.terminals[9100][0] == "delivered"

        def report():
            return fold_traffic_report(
                [packet],
                dict(plane.terminals),
                tuple(plane.hop_log.entries()),
                dict(plane.relay_load),
            )

        before = report()
        assert before["stretch"]["p50"] >= 1.0  # multi-hop: real geometry
        # Drag the endpoints across the field after delivery.  Hop
        # positions were captured when each hop was logged, so the
        # report cannot change (the old one read the network *now*).
        for node_id, shift in ((src, 500.0), (dst, -500.0)):
            position = sim.network.node(node_id).position
            sim.move_node(node_id, Vec2(position.x + shift, position.y + shift))
        assert report() == before
        sim.runtime.radio.data_plane = None


class TestDeliveredUpgrade:
    def _packet(self):
        return Packet(
            pid=0, kind="p2p", created_at=0.0, src=1, dst=2, dst_pos=(9.0, 0.0)
        )

    def test_delivered_upgrades_earlier_outcome(self):
        fold = TrafficFold([self._packet()])
        fold.add_hop(0, 0, 1, 0.0, 0.0)
        fold.add_terminal(0, "dropped", 4.0)
        fold.add_terminal(0, "delivered", 6.0)
        report = fold.finish({})
        assert report["outcomes"]["delivered"] == 1
        assert report["outcomes"]["dropped"] == 0
        assert report["delay"]["max"] == 6.0

    def test_nothing_downgrades_delivered(self):
        fold = TrafficFold([self._packet()])
        fold.add_hop(0, 0, 1, 0.0, 0.0)
        fold.add_terminal(0, "delivered", 3.0)
        fold.add_terminal(0, "dropped", 5.0)
        fold.add_terminal(0, "delivered", 7.0)
        report = fold.finish({})
        assert report["outcomes"] == {
            **{name: 0 for name in TERMINAL_OUTCOMES},
            "delivered": 1,
            "missing": 0,
        }
        assert report["delay"]["max"] == 3.0  # first delivery's time kept

    def test_non_delivered_never_replaces_non_delivered(self):
        fold = TrafficFold([self._packet()])
        fold.add_terminal(0, "dropped", 2.0)
        fold.add_terminal(0, "ttl_expired", 4.0)
        assert fold.finish({})["outcomes"]["dropped"] == 1


class _CountingPlane:
    """Claims every payload and counts deliveries per payload."""

    def __init__(self):
        self.delivered = []

    def claims(self, payload):
        return True

    def on_frame(self, payload, dest_id, sender_id):
        self.delivered.append(payload)


class TestDataFramesNeverDuplicate:
    def test_exactly_one_delivery_under_heavy_duplication(self):
        net = Network(cell_size=50.0)
        a = net.add_node(Vec2(0.0, 0.0), 50.0)
        b = net.add_node(Vec2(10.0, 0.0), 50.0)
        from repro.sim import Simulator

        sim = Simulator()
        rng = RngStreams(5)
        faults = ChannelFaultModel(rng, duplicate_prob=0.95)
        radio = Radio(net, sim, rng=rng, faults=faults)
        plane = _CountingPlane()
        radio.data_plane = plane
        sent = sum(
            radio.send_data(a.node_id, b.node_id, f"frame-{i}") == "sent"
            for i in range(50)
        )
        sim.run()
        assert sent == 50  # lossless channel: duplication is the only knob
        assert len(plane.delivered) == 50
        assert len(set(plane.delivered)) == 50
        assert faults.duplicates_sent == 0


class TestGeneratedFromFailedRouter:
    DATA = {
        "config": {"ideal_radius": 100.0, "radius_tolerance": 25.0},
        "deployment": {
            "kind": "uniform",
            "field_radius": 200.0,
            "n_nodes": 40,
        },
        "traffic": {"duration": 10.0, "flows": {"rate": 0.1}},
    }

    @staticmethod
    def _ok_report(generated):
        outcomes = {name: 0 for name in TERMINAL_OUTCOMES}
        outcomes["delivered"] = generated
        outcomes["missing"] = 0
        return {
            "generated": generated,
            "outcomes": outcomes,
            "delivery_ratio": 1.0,
            "by_kind": {},
            "delay": {"mean": 1.0, "p50": 1.0, "p90": 2.0, "p99": 2.0, "max": 3.0},
            "hops": {"mean": 2.0, "max": 4},
            "stretch": {"p50": 1.1, "p90": 1.3, "max": 1.5},
            "relay": {
                "relaying_nodes": 3,
                "transmissions": 9,
                "max_load": 7,
                "top_hotspots": [],
            },
            "chaos_events": 0,
        }

    def test_generated_taken_from_any_successful_router(self, monkeypatch):
        import repro.traffic.runner as runner_mod

        def fake_run_router(data, seed, traffic, chaos, has_chaos, router, **kw):
            if router == "cell":
                return {"error": "initial configuration did not stabilise"}
            return self._ok_report(42)

        monkeypatch.setattr(runner_mod, "_run_router", fake_run_router)
        result = runner_mod.run_traffic_replicate({"data": self.DATA, "seed": 1})
        assert result["generated"] == 42  # not 0 from the failed first router

    def test_generated_zero_only_when_every_router_failed(self, monkeypatch):
        import repro.traffic.runner as runner_mod

        monkeypatch.setattr(
            runner_mod,
            "_run_router",
            lambda *a, **kw: {"error": "boom"},
        )
        result = runner_mod.run_traffic_replicate({"data": self.DATA, "seed": 1})
        assert result["generated"] == 0

    def test_summarize_surfaces_router_errors_distinctly(self):
        failed = {
            "seed": 1,
            "generated": 42,
            "routers": {
                "cell": {"error": "initial configuration did not stabilise"},
                "hybrid": self._ok_report(42),
            },
        }
        healthy = {
            "seed": 2,
            "generated": 40,
            "routers": {
                "cell": self._ok_report(40),
                "hybrid": self._ok_report(40),
            },
        }
        summary = summarize_traffic(
            [
                ReplicateOutcome(index=0, ok=True, result=failed),
                ReplicateOutcome(index=1, ok=True, result=healthy),
            ]
        )
        cell = summary["routers"]["cell"]
        assert cell["reports"] == 1
        assert cell["unconfigured"] == 1
        assert cell["errors"] == {
            "initial configuration did not stabilise": 1
        }
        assert cell["generated"] == 40  # the failed replicate is excluded
        hybrid = summary["routers"]["hybrid"]
        assert hybrid["unconfigured"] == 0
        assert "errors" not in hybrid  # emitted only when nonempty
