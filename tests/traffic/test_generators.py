"""Workload generation: config parsing and schedule determinism."""

import pytest

from repro.core import GS3Config, Gs3DynamicSimulation
from repro.net import grid_jitter
from repro.sim import RngStreams
from repro.traffic import TrafficConfig, generate_workload

CFG = GS3Config(ideal_radius=100.0, radius_tolerance=25.0)


@pytest.fixture(scope="module")
def network():
    deployment = grid_jitter(200.0, 40.0, 6.0, RngStreams(91))
    sim = Gs3DynamicSimulation.from_deployment(deployment, CFG, seed=91)
    return sim.network


FULL = {
    "duration": 120.0,
    "flows": {"rate": 0.2},
    "convergecast": {"rate": 0.1},
    "cbr": {"sources": 3, "interval": 20.0},
}


class TestConfig:
    def test_defaults(self):
        config = TrafficConfig()
        assert config.routers == ("cell", "hybrid")
        assert config.ttl == 32

    def test_from_dict_full(self):
        config = TrafficConfig.from_dict(FULL)
        assert config.p2p_rate == 0.2
        assert config.converge_rate == 0.1
        assert config.cbr_sources == 3
        assert config.cbr_interval == 20.0

    def test_roundtrip(self):
        config = TrafficConfig.from_dict(FULL)
        assert TrafficConfig.from_dict(config.to_dict()) == config

    def test_unknown_top_level_key_rejected(self):
        with pytest.raises(ValueError, match="unknown traffic keys"):
            TrafficConfig.from_dict({"rate": 1.0})

    def test_unknown_nested_key_rejected(self):
        with pytest.raises(ValueError, match="unknown traffic.flows keys"):
            TrafficConfig.from_dict({"flows": {"lambda": 1.0}})

    @pytest.mark.parametrize(
        "bad",
        [
            {"duration": 0.0},
            {"ttl": 0},
            {"max_retries": -1},
            {"retry_delay": 0.0},
            {"drain": -1.0},
            {"routers": []},
            {"routers": ["gpsr"]},
            {"flows": {"rate": -0.5}},
            {"cbr": {"sources": -1}},
            {"cbr": {"sources": 2, "interval": 0.0}},
        ],
    )
    def test_invalid_values_rejected(self, bad):
        with pytest.raises(ValueError):
            TrafficConfig.from_dict(bad)

    def test_with_routers(self):
        config = TrafficConfig().with_routers(["hybrid"])
        assert config.routers == ("hybrid",)

    def test_plane_config_shape(self):
        plane = TrafficConfig(ttl=8).plane_config("cell")
        assert plane == {
            "router": "cell",
            "ttl": 8,
            "max_retries": 3,
            "retry_delay": 5.0,
        }


class TestWorkload:
    def test_same_seed_same_schedule(self, network):
        config = TrafficConfig.from_dict(FULL)
        a = generate_workload(config, network, 7, 100.0)
        b = generate_workload(config, network, 7, 100.0)
        assert a == b
        assert a  # non-empty at these rates

    def test_different_seed_different_schedule(self, network):
        config = TrafficConfig.from_dict(FULL)
        a = generate_workload(config, network, 7, 100.0)
        b = generate_workload(config, network, 8, 100.0)
        assert a != b

    def test_schedule_shape(self, network):
        config = TrafficConfig.from_dict(FULL)
        packets = generate_workload(config, network, 7, 100.0)
        big = network.big_id
        end = 100.0 + config.duration
        assert [p.pid for p in packets] == list(range(len(packets)))
        times = [p.created_at for p in packets]
        assert times == sorted(times)
        for p in packets:
            assert 100.0 <= p.created_at < end
            assert p.src != big
            assert p.src != p.dst
            assert p.kind in ("p2p", "converge", "cbr")
            if p.kind in ("converge", "cbr"):
                assert p.dst == big
            pos = network.node(p.dst).position
            assert p.dst_pos == (pos.x, pos.y)

    def test_cbr_cadence(self, network):
        config = TrafficConfig.from_dict(
            {"duration": 100.0, "cbr": {"sources": 2, "interval": 25.0}}
        )
        packets = generate_workload(config, network, 7, 0.0)
        cbr = [p for p in packets if p.kind == "cbr"]
        sources = {p.src for p in cbr}
        assert len(sources) == 2
        for src in sources:
            times = sorted(
                p.created_at for p in cbr if p.src == src
            )
            gaps = {
                round(b - a, 9) for a, b in zip(times, times[1:])
            }
            assert gaps == {25.0}

    def test_zero_rates_empty(self, network):
        packets = generate_workload(
            TrafficConfig(), network, 7, 0.0
        )
        assert packets == []


class TestBurst:
    def test_from_dict_and_roundtrip(self):
        config = TrafficConfig.from_dict(
            {"duration": 50.0, "burst": {"rate": 0.5, "size": 12}}
        )
        assert config.burst_rate == 0.5
        assert config.burst_size == 12
        assert TrafficConfig.from_dict(config.to_dict()) == config

    def test_default_size_omitted_from_dict(self):
        config = TrafficConfig.from_dict({"burst": {"rate": 0.5}})
        assert config.burst_size == 8
        assert config.to_dict()["burst"] == {"rate": 0.5}

    @pytest.mark.parametrize(
        "bad",
        [
            {"burst": {"rate": -0.1}},
            {"burst": {"rate": 1.0, "size": 0}},
            {"burst": {"rate": 1.0, "window": 2.0}},
        ],
    )
    def test_invalid_burst_rejected(self, bad):
        with pytest.raises(ValueError):
            TrafficConfig.from_dict(bad)

    def test_bursts_are_contiguous_same_source_groups(self, network):
        config = TrafficConfig.from_dict(
            {"duration": 80.0, "burst": {"rate": 0.3, "size": 5}}
        )
        packets = generate_workload(config, network, 7, 0.0)
        assert packets and all(p.kind == "burst" for p in packets)
        assert len(packets) % 5 == 0
        # Each burst: one instant, one source, contiguous pids.
        for i in range(0, len(packets), 5):
            group = packets[i : i + 5]
            assert len({p.created_at for p in group}) == 1
            assert len({p.src for p in group}) == 1
            for p in group:
                assert p.dst != p.src

    def test_burst_schedule_is_seeded(self, network):
        config = TrafficConfig.from_dict({"burst": {"rate": 0.2}})
        a = generate_workload(config, network, 7, 0.0)
        b = generate_workload(config, network, 7, 0.0)
        assert a == b
        assert a != generate_workload(config, network, 8, 0.0)
