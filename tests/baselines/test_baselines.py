"""Tests for the LEACH and hop-clustering baselines."""

import math
import random

import pytest

from repro.baselines import (
    Cluster,
    ClusterSet,
    LeachClustering,
    LeachConfig,
    hop_clustering,
)
from repro.geometry import Vec2
from repro.net import Network, uniform_disk
from repro.sim import RngStreams


def make_positions(n=200, radius=300.0, seed=1):
    deployment = uniform_disk(radius, n, RngStreams(seed))
    return {
        i: p
        for i, p in enumerate(deployment.all_positions())
    }


class TestClusterSet:
    def test_radius(self):
        cluster = Cluster(
            head_id=0,
            head_position=Vec2(0, 0),
            member_ids=(1, 2),
            member_positions=(Vec2(3, 4), Vec2(1, 0)),
        )
        assert cluster.radius() == pytest.approx(5.0)
        assert cluster.size == 3

    def test_empty_cluster_radius(self):
        cluster = Cluster(0, Vec2(0, 0), (), ())
        assert cluster.radius() == 0.0

    def test_from_assignment(self):
        positions = {0: Vec2(0, 0), 1: Vec2(1, 0), 2: Vec2(10, 0)}
        cs = ClusterSet.from_assignment(
            positions, {1: 0, 2: 0}, heads=[0]
        )
        assert cs.head_count == 1
        assert cs.clusters[0].member_ids == (1, 2)
        assert cs.covered_ids() == {0, 1, 2}


class TestLeachConfig:
    def test_epoch_length(self):
        assert LeachConfig(head_fraction=0.05).epoch_length == 20
        assert LeachConfig(head_fraction=0.3).epoch_length == 4

    def test_invalid_fraction(self):
        with pytest.raises(ValueError):
            LeachConfig(head_fraction=0.0)
        with pytest.raises(ValueError):
            LeachConfig(head_fraction=1.0)


class TestLeach:
    def test_round_covers_everyone(self):
        positions = make_positions()
        leach = LeachClustering(
            positions, LeachConfig(0.05), random.Random(1)
        )
        cs = leach.run_round()
        assert cs.covered_ids() == set(positions)

    def test_head_count_near_fraction(self):
        positions = make_positions(n=2000)
        leach = LeachClustering(
            positions, LeachConfig(0.05), random.Random(2)
        )
        counts = [leach.run_round().head_count for _ in range(5)]
        # ~100 heads expected; loose bounds.
        assert all(20 <= c <= 250 for c in counts)

    def test_rotation_every_node_serves_once_per_epoch(self):
        positions = make_positions(n=60)
        config = LeachConfig(head_fraction=0.2)
        leach = LeachClustering(positions, config, random.Random(3))
        served = []
        for _ in range(config.epoch_length):
            served.extend(c.head_id for c in leach.run_round().clusters)
        # No node serves twice within one epoch.
        assert len(served) == len(set(served))

    def test_members_join_nearest_head(self):
        positions = make_positions(n=300)
        leach = LeachClustering(
            positions, LeachConfig(0.1), random.Random(4)
        )
        cs = leach.run_round()
        head_positions = {
            c.head_id: c.head_position for c in cs.clusters
        }
        for cluster in cs.clusters:
            for member_id, member_pos in zip(
                cluster.member_ids, cluster.member_positions
            ):
                own = member_pos.distance_to(cluster.head_position)
                best = min(
                    member_pos.distance_to(p)
                    for p in head_positions.values()
                )
                assert own == pytest.approx(best)

    def test_degenerate_round_forces_one_head(self):
        positions = {0: Vec2(0, 0), 1: Vec2(1, 0)}
        leach = LeachClustering(
            positions, LeachConfig(0.01), random.Random(5)
        )
        cs = leach.run_round()
        assert cs.head_count >= 1

    def test_empty_population_rejected(self):
        with pytest.raises(ValueError):
            LeachClustering({}, LeachConfig(0.1), random.Random(1))

    def test_messages_per_round(self):
        positions = make_positions(n=50)
        leach = LeachClustering(
            positions, LeachConfig(0.1), random.Random(6)
        )
        assert leach.messages_per_round() == 51  # big node included

    def test_radius_spread_wider_than_gs3_bound(self):
        # LEACH gives no geographic radius guarantee: with typical
        # parameters, some cluster exceeds the GS3 bound for the
        # equivalent head density.
        positions = make_positions(n=2000, radius=500.0)
        leach = LeachClustering(
            positions, LeachConfig(0.02), random.Random(7)
        )
        radii = []
        for _ in range(3):
            radii.extend(leach.run_round().radii())
        spread = max(radii) / (sum(radii) / len(radii))
        assert spread > 1.5


class TestHopClustering:
    def build_network(self, n=300, radius=300.0, max_range=60.0, seed=11):
        deployment = uniform_disk(radius, n, RngStreams(seed))
        return deployment.build_network(max_range=max_range)

    def test_covers_component(self):
        network = self.build_network()
        cs = hop_clustering(network, max_hops=3)
        reachable = network.connected_to(network.big_id)
        assert cs.covered_ids() == reachable

    def test_logical_radius_bound(self):
        network = self.build_network()
        k = 2
        cs = hop_clustering(network, max_hops=k)
        # Geographic consequence: members within k * max_range.
        for cluster in cs.clusters:
            assert cluster.radius() <= k * 60.0 + 1e-9

    def test_more_hops_fewer_clusters(self):
        network = self.build_network()
        few = hop_clustering(network, max_hops=4).head_count
        many = hop_clustering(network, max_hops=1).head_count
        assert few < many

    def test_invalid_hops(self):
        network = self.build_network(n=10)
        with pytest.raises(ValueError):
            hop_clustering(network, max_hops=0)

    def test_requires_seed(self):
        network = Network(cell_size=10.0)
        network.add_node(Vec2(0, 0), 10.0)
        with pytest.raises(ValueError):
            hop_clustering(network, max_hops=2)

    def test_explicit_seed(self):
        network = Network(cell_size=50.0)
        a = network.add_node(Vec2(0, 0), 50.0)
        network.add_node(Vec2(30, 0), 50.0)
        cs = hop_clustering(network, max_hops=1, seed_id=a.node_id)
        assert cs.covered_ids() == {0, 1}

    def test_deterministic(self):
        network = self.build_network()
        a = hop_clustering(network, max_hops=2)
        b = hop_clustering(network, max_hops=2)
        assert a == b
