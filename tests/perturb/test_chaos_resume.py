"""Resume/retry semantics of chaos campaigns backed by a RunStore."""

import pytest

from repro.perturb import run_chaos_campaigns
from repro.sim import RunStore, canonical_json

SMALL = {
    "seed": 11,
    "config": {"ideal_radius": 100.0, "radius_tolerance": 25.0},
    "deployment": {
        "kind": "uniform",
        "field_radius": 130.0,
        "n_nodes": 160,
    },
    "chaos": {
        "duration": 200.0,
        "kill_rate": 0.004,
        "join_rate": 0.002,
        "settle_window": 80.0,
    },
}


def _payloads(outcomes):
    return canonical_json([o.result for o in outcomes])


@pytest.mark.slow
class TestChaosResume:
    def test_interrupted_campaign_resumes_with_identical_payloads(
        self, tmp_path
    ):
        n, k = 3, 2
        baseline = run_chaos_campaigns(SMALL, campaigns=n, workers=0)
        store = RunStore(tmp_path)
        # "Interrupt" after k campaigns by only running k of them.
        run_chaos_campaigns(SMALL, campaigns=k, workers=0, store=store)
        resumed = run_chaos_campaigns(
            SMALL, campaigns=n, workers=0, store=store, resume=True
        )
        assert [o.cached for o in resumed] == [True] * k + [False] * (n - k)
        assert all(o.ok for o in resumed)
        # Byte-identical aggregation versus the uninterrupted run.
        assert _payloads(resumed) == _payloads(baseline)
        # Exactly n - k campaigns executed in the resumed run: every
        # stored record still carries attempts == 1.
        records = store.load_records(next(iter(store.runs())))
        assert len(records) == n
        assert all(r.attempts == 1 for r in records.values())

    def test_second_resume_is_fully_cached(self, tmp_path):
        store = RunStore(tmp_path)
        first = run_chaos_campaigns(
            SMALL, campaigns=2, workers=0, store=store, resume=True
        )
        again = run_chaos_campaigns(
            SMALL, campaigns=2, workers=0, store=store, resume=True
        )
        assert all(o.cached for o in again)
        assert _payloads(first) == _payloads(again)

    def test_base_seed_forks_the_run_identity(self, tmp_path):
        store = RunStore(tmp_path)
        run_chaos_campaigns(
            SMALL, campaigns=1, workers=0, store=store, resume=True
        )
        run_chaos_campaigns(
            SMALL,
            campaigns=1,
            base_seed=99,
            workers=0,
            store=store,
            resume=True,
        )
        assert len(store.runs()) == 2
