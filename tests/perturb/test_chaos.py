"""Tests for chaos campaigns and stabilization verdicts."""

import pytest

from repro.core import GS3Config, Gs3DynamicSimulation
from repro.geometry import Vec2
from repro.net import deployment_from_spec
from repro.perturb import (
    ChaosCampaign,
    ChaosConfig,
    RegionJam,
    PerturbationInjector,
    run_chaos_campaigns,
    run_chaos_replicate,
    summarize_verdicts,
)
from repro.sim import RngStreams
from repro.sim.parallel import ReplicateOutcome

SMALL = {
    "seed": 11,
    "config": {"ideal_radius": 100.0, "radius_tolerance": 25.0},
    "deployment": {
        "kind": "uniform",
        "field_radius": 130.0,
        "n_nodes": 160,
    },
    "chaos": {
        "duration": 250.0,
        "kill_rate": 0.004,
        "join_rate": 0.002,
        "settle_window": 80.0,
    },
}


class TestChaosConfig:
    def test_rejects_unknown_keys(self):
        with pytest.raises(ValueError, match="unknown chaos keys"):
            ChaosConfig.from_dict({"kill_rte": 0.1})

    def test_rejects_negative_rates_and_bad_jams(self):
        with pytest.raises(ValueError):
            ChaosConfig(kill_rate=-0.1)
        with pytest.raises(ValueError):
            ChaosConfig(jam_rate=0.1, jam_radius=0.0)
        with pytest.raises(ValueError):
            ChaosConfig(heal_budget=0.0)

    def test_round_trip(self):
        config = ChaosConfig(duration=100.0, kill_rate=0.01, jam_rate=0.001)
        assert ChaosConfig.from_dict(config.to_dict()) == config


class TestChaosCampaign:
    def _sim(self, seed=3):
        streams = RngStreams(seed)
        deployment = deployment_from_spec(
            {"kind": "uniform", "field_radius": 120.0, "n_nodes": 120},
            streams,
        )
        sim = Gs3DynamicSimulation.from_deployment(
            deployment,
            GS3Config(ideal_radius=100.0, radius_tolerance=25.0),
            seed=seed,
        )
        return sim, deployment, streams

    def test_schedule_is_seed_deterministic_and_sorted(self):
        sim, deployment, _ = self._sim()
        config = ChaosConfig(
            duration=500.0,
            kill_rate=0.01,
            join_rate=0.01,
            move_rate=0.005,
            jam_rate=0.004,
            jam_radius=30.0,
            jam_duration=50.0,
        )
        schedules = [
            ChaosCampaign(config, RngStreams(99)).events(
                sim.network, deployment.field, 10.0
            )
            for _ in range(2)
        ]
        assert schedules[0] == schedules[1]
        times = [e.time for e in schedules[0]]
        assert times == sorted(times)
        assert all(10.0 <= t < 510.0 for t in times)
        assert any(isinstance(e, RegionJam) for e in schedules[0])

    def test_zero_rates_mean_no_events(self):
        sim, deployment, streams = self._sim()
        campaign = ChaosCampaign(ChaosConfig(duration=500.0), streams)
        assert campaign.events(sim.network, deployment.field, 0.0) == []

    def test_region_jam_reaches_the_radio(self):
        sim, deployment, _ = self._sim()
        sim.run_until_stable(window=60.0, max_time=20_000.0)
        start = sim.now
        PerturbationInjector(sim).schedule(
            [
                RegionJam(
                    time=start + 5.0,
                    center=Vec2(0, 0),
                    radius=40.0,
                    duration=30.0,
                )
            ]
        )
        sim.run_for(10.0)
        faults = sim.runtime.radio.faults
        assert faults is not None
        assert len(faults.jam_windows) == 1
        assert faults.jam_windows[0].end == start + 35.0
        assert sim.tracer.count("perturb.jam") == 1


class TestRunChaosReplicate:
    def test_verdict_shape_and_health(self):
        verdict = run_chaos_replicate({"data": SMALL, "seed": 21})
        assert verdict["seed"] == 21
        assert verdict["healed"] is True
        assert verdict["timed_out"] is False
        assert verdict["healing_time"] is not None
        assert verdict["violations"] == []
        assert verdict["configured_at"] is not None
        assert verdict["events_injected"] >= 0
        assert verdict["cells_disturbed"] >= 0

    def test_identical_across_worker_counts(self):
        serial, pooled = (
            run_chaos_campaigns(SMALL, campaigns=2, workers=w)
            for w in (0, 2)
        )
        assert [o.result for o in serial] == [o.result for o in pooled]
        assert all(o.ok for o in serial)


class TestSummarizeVerdicts:
    def _outcome(self, index, ok=True, **verdict):
        base = {
            "seed": index,
            "healed": True,
            "timed_out": False,
            "healing_time": 100.0,
            "cells_disturbed": 2,
            "events_injected": 5,
            "violations": [],
            "last_change_category": None,
            "configured_at": 50.0,
        }
        base.update(verdict)
        if ok:
            return ReplicateOutcome(index, True, result=base, elapsed=0.1)
        return ReplicateOutcome(index, False, error="boom", elapsed=0.1)

    def test_percentiles_and_fractions(self):
        outcomes = [
            self._outcome(i, healing_time=t)
            for i, t in enumerate([10.0, 20.0, 30.0, 40.0])
        ] + [
            self._outcome(
                4,
                healed=False,
                timed_out=True,
                healing_time=None,
                violations=["I1"],
            ),
            self._outcome(5, ok=False),
        ]
        summary = summarize_verdicts(outcomes)
        assert summary["campaigns"] == 6
        assert summary["crashed"] == 1
        assert summary["healed"] == 4
        assert summary["healed_fraction"] == pytest.approx(4 / 5)
        assert summary["timed_out"] == 1
        assert summary["healing_time"] == {
            "p50": 20.0,
            "p90": 40.0,
            "max": 40.0,
        }

    def test_percentile_edge_ranks(self):
        """Pin nearest-rank behavior at the boundaries.

        q=0 must return the minimum, q=1.0 the maximum (the rank
        formula ``ceil(q*n)-1`` lands on n-1 exactly, no off-by-one),
        and a single-element sequence answers every q with that
        element."""
        from repro.perturb.chaos import _percentile

        values = [10.0, 20.0, 30.0, 40.0, 50.0]
        assert _percentile(values, 0.0) == 10.0
        assert _percentile(values, 0.5) == 30.0
        assert _percentile(values, 1.0) == 50.0
        # Just below a rank boundary stays on the lower rank.
        assert _percentile(values, 0.2) == 10.0
        assert _percentile(values, 0.2000001) == 20.0
        assert _percentile([7.0], 0.0) == 7.0
        assert _percentile([7.0], 0.5) == 7.0
        assert _percentile([7.0], 1.0) == 7.0

    def test_percentile_rejects_bad_inputs(self):
        from repro.perturb.chaos import _percentile

        with pytest.raises(ValueError, match="empty"):
            _percentile([], 0.5)
        with pytest.raises(ValueError, match="must be in"):
            _percentile([1.0], 1.5)
        with pytest.raises(ValueError, match="must be in"):
            _percentile([1.0], -0.1)

    def test_empty_and_unhealed(self):
        assert summarize_verdicts([])["healed_fraction"] == 0.0
        summary = summarize_verdicts(
            [self._outcome(0, healed=False, healing_time=None)]
        )
        assert summary["healing_time"] is None
