"""Tests for perturbation events, workloads, and the injector."""

import pytest

from repro.core import GS3Config, Gs3DynamicSimulation, NodeStatus
from repro.geometry import Vec2
from repro.net import uniform_disk
from repro.perturb import (
    NodeJoin,
    NodeLeave,
    NodeMove,
    NodeRejoin,
    PerturbationInjector,
    RegionKill,
    StateCorruption,
    churn_workload,
    mobility_workload,
)
from repro.sim import RngStreams

CFG = GS3Config(ideal_radius=100.0, radius_tolerance=25.0)


def make_sim(seed=15, n=550, radius=220.0):
    deployment = uniform_disk(radius, n, RngStreams(seed))
    sim = Gs3DynamicSimulation.from_deployment(deployment, CFG, seed=seed)
    sim.run_until_stable(window=60.0, max_time=5000.0)
    return sim


class TestWorkloads:
    def test_churn_rates(self):
        events = churn_workload(
            node_ids=range(100),
            field_radius=200.0,
            rng_streams=RngStreams(1),
            start=0.0,
            end=1000.0,
            join_rate=0.01,
            leave_rate=0.02,
            corruption_rate=0.005,
        )
        joins = [e for e in events if isinstance(e, NodeJoin)]
        leaves = [e for e in events if isinstance(e, NodeLeave)]
        corruptions = [e for e in events if isinstance(e, StateCorruption)]
        assert 2 <= len(joins) <= 30
        assert 5 <= len(leaves) <= 50
        assert 1 <= len(corruptions) <= 20

    def test_churn_sorted_and_spares_big(self):
        events = churn_workload(
            node_ids=range(50),
            field_radius=100.0,
            rng_streams=RngStreams(2),
            start=0.0,
            end=5000.0,
            leave_rate=0.01,
        )
        times = [e.time for e in events]
        assert times == sorted(times)
        assert all(e.node_id != 0 for e in events)

    def test_join_positions_in_field(self):
        events = churn_workload(
            node_ids=range(10),
            field_radius=100.0,
            rng_streams=RngStreams(3),
            start=0.0,
            end=2000.0,
            join_rate=0.01,
        )
        assert events
        assert all(e.position.norm() <= 100.0 + 1e-9 for e in events)

    def test_zero_rates_no_events(self):
        events = churn_workload(
            node_ids=range(10),
            field_radius=100.0,
            rng_streams=RngStreams(4),
            start=0.0,
            end=1000.0,
        )
        assert events == []

    def test_mobility_workload(self):
        ids = list(range(20))
        positions = [Vec2(float(i), 0.0) for i in ids]
        events = mobility_workload(
            ids,
            positions,
            RngStreams(5),
            start=0.0,
            end=2000.0,
            move_rate=0.01,
            mean_step=10.0,
            field_radius=100.0,
        )
        assert events
        assert all(isinstance(e, NodeMove) for e in events)
        assert all(e.position.norm() <= 100.0 + 1e-9 for e in events)
        assert all(e.node_id != 0 for e in events)

    def test_mobility_mismatched_inputs(self):
        with pytest.raises(ValueError):
            mobility_workload(
                [1, 2],
                [Vec2(0, 0)],
                RngStreams(6),
                0.0,
                10.0,
                move_rate=0.1,
                mean_step=1.0,
            )

    def test_deterministic(self):
        kwargs = dict(
            node_ids=range(30),
            field_radius=100.0,
            start=0.0,
            end=1000.0,
            leave_rate=0.02,
        )
        a = churn_workload(rng_streams=RngStreams(7), **kwargs)
        b = churn_workload(rng_streams=RngStreams(7), **kwargs)
        assert a == b


class TestInjector:
    def test_leave_event_kills_node(self):
        sim = make_sim()
        snap = sim.snapshot()
        victim = next(
            v.node_id for v in snap.associates.values() if not v.is_candidate
        )
        injector = PerturbationInjector(sim)
        count = injector.schedule(
            [NodeLeave(time=sim.now + 50.0, node_id=victim)]
        )
        assert count == 1
        sim.run_for(100.0)
        assert not sim.network.node(victim).alive
        assert len(injector.applied) == 1

    def test_join_event_adds_node(self):
        sim = make_sim(seed=16)
        before = len(sim.network)
        PerturbationInjector(sim).schedule(
            [NodeJoin(time=sim.now + 10.0, position=Vec2(40.0, 40.0))]
        )
        sim.run_for(50.0)
        assert len(sim.network) == before + 1

    def test_rejoin_event(self):
        sim = make_sim(seed=17)
        snap = sim.snapshot()
        victim = next(
            v.node_id for v in snap.associates.values() if not v.is_candidate
        )
        injector = PerturbationInjector(sim)
        injector.schedule(
            [
                NodeLeave(time=sim.now + 10.0, node_id=victim),
                NodeRejoin(time=sim.now + 200.0, node_id=victim),
            ]
        )
        sim.run_for(400.0)
        assert sim.network.node(victim).alive

    def test_move_event(self):
        sim = make_sim(seed=18)
        snap = sim.snapshot()
        victim = next(
            v.node_id for v in snap.associates.values() if not v.is_candidate
        )
        target = Vec2(12.0, 34.0)
        PerturbationInjector(sim).schedule(
            [NodeMove(time=sim.now + 10.0, node_id=victim, position=target)]
        )
        sim.run_for(50.0)
        assert sim.network.node(victim).position == target

    def test_region_kill_event(self):
        sim = make_sim(seed=19)
        alive_before = sim.network.alive_count()
        PerturbationInjector(sim).schedule(
            [RegionKill(time=sim.now + 10.0, center=Vec2(100, 0), radius=60.0)]
        )
        sim.run_for(50.0)
        assert sim.network.alive_count() < alive_before

    def test_corruption_event(self):
        sim = make_sim(seed=20)
        snap = sim.snapshot()
        victim = next(v for v in snap.heads.values() if not v.is_big)
        PerturbationInjector(sim).schedule(
            [StateCorruption(time=sim.now + 10.0, node_id=victim.node_id)]
        )
        sim.run_for(50.0)
        assert sim.tracer.count("perturb.corrupt") == 1
