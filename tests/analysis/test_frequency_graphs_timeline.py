"""Tests for frequency reuse, networkx exports, and timelines."""

import math

import pytest

from repro.analysis import (
    assign_channels,
    build_timeline,
    head_graph_nx,
    head_neighboring_graph_nx,
    ideal_channel_count,
    physical_graph_nx,
    render_timeline,
)
from repro.core import GS3Config, Gs3Simulation
from repro.geometry import hex_distance
from repro.net import uniform_disk
from repro.sim import TraceRecord, Tracer

CFG = GS3Config(ideal_radius=100.0, radius_tolerance=25.0)


@pytest.fixture(scope="module")
def run():
    deployment = uniform_disk(300.0, 1000, RngStreams(95))
    sim = Gs3Simulation.from_deployment(deployment, CFG, seed=95)
    sim.run_to_quiescence()
    return sim


from repro.sim import RngStreams  # noqa: E402  (used in the fixture)


class TestChannelAssignment:
    def test_reuse_two_uses_three_channels(self, run):
        plan = assign_channels(run.snapshot(), min_reuse_distance=2)
        # GS3's lattice is the ideal hexagonal layout: the classic
        # 3-channel plan suffices (boundary effects cannot raise it).
        assert plan.channel_count == ideal_channel_count(2) == 3

    def test_reuse_three_uses_seven_channels(self, run):
        plan = assign_channels(run.snapshot(), min_reuse_distance=3)
        assert plan.channel_count <= ideal_channel_count(3) + 1

    def test_constraint_respected(self, run):
        snapshot = run.snapshot()
        plan = assign_channels(snapshot, min_reuse_distance=2)
        axial_of = {
            h: v.cell_axial for h, v in snapshot.heads.items()
        }
        for a, channel_a in plan.channel_of.items():
            for b, channel_b in plan.channel_of.items():
                if a < b and channel_a == channel_b:
                    assert hex_distance(axial_of[a], axial_of[b]) >= 2

    def test_reuse_factor(self, run):
        plan = assign_channels(run.snapshot(), min_reuse_distance=2)
        assert plan.reuse_factor == pytest.approx(
            len(plan.channel_of) / plan.channel_count
        )

    def test_smaller_cells_more_reuse(self):
        # The paper's claim: halving R quadruples the cell count over
        # the same field, and the channel count stays constant, so the
        # reuse factor grows.
        small_cfg = GS3Config(ideal_radius=60.0, radius_tolerance=15.0)
        deployment = uniform_disk(300.0, 1500, RngStreams(96))
        big_run = Gs3Simulation.from_deployment(deployment, CFG, seed=96)
        big_run.run_to_quiescence()
        small_run = Gs3Simulation.from_deployment(
            deployment, small_cfg, seed=96
        )
        small_run.run_to_quiescence()
        big_plan = assign_channels(big_run.snapshot(), 2)
        small_plan = assign_channels(small_run.snapshot(), 2)
        assert small_plan.reuse_factor > big_plan.reuse_factor

    def test_invalid_distance(self, run):
        with pytest.raises(ValueError):
            assign_channels(run.snapshot(), min_reuse_distance=0)
        with pytest.raises(ValueError):
            ideal_channel_count(9)


class TestNetworkxExports:
    def test_head_graph_is_tree(self, run):
        import networkx as nx

        graph = head_graph_nx(run.snapshot())
        assert nx.is_arborescence(graph)

    def test_head_neighboring_graph_edges(self, run):
        snapshot = run.snapshot()
        graph = head_neighboring_graph_nx(snapshot)
        assert graph.number_of_edges() == len(snapshot.neighbor_head_pairs)
        for _, _, data in graph.edges(data=True):
            assert CFG.neighbor_distance_low - 1e-6 <= data["distance"]

    def test_physical_graph_connected(self, run):
        import networkx as nx

        graph = physical_graph_nx(run.network)
        assert nx.is_connected(graph)

    def test_node_attributes(self, run):
        graph = head_graph_nx(run.snapshot())
        big = run.network.big_id
        assert graph.nodes[big]["is_big"]
        assert graph.nodes[big]["hops"] == 0


class TestTimeline:
    def make_records(self):
        return [
            TraceRecord(10.0, "msg.send", 1),
            TraceRecord(12.0, "head.claim", 2),
            TraceRecord(60.0, "head.claim", 3),
            TraceRecord(61.0, "associate.join", 4),
            TraceRecord(130.0, "perturb.kill", 5),
        ]

    def test_bucketing(self):
        buckets = build_timeline(self.make_records(), bucket_width=50.0)
        assert len(buckets) == 3
        assert buckets[0].counts == {"messages": 1, "healing": 1}
        assert buckets[1].counts == {"healing": 1, "membership": 1}
        assert buckets[2].counts == {"perturbations": 1}

    def test_empty(self):
        assert build_timeline([]) == []

    def test_invalid_width(self):
        with pytest.raises(ValueError):
            build_timeline(self.make_records(), bucket_width=0.0)

    def test_render(self):
        buckets = build_timeline(self.make_records(), bucket_width=50.0)
        art = render_timeline(buckets, family="healing")
        assert "healing" in art
        assert "#" in art

    def test_render_empty(self):
        assert render_timeline([]) == "(no events)"

    def test_real_run_timeline(self, run):
        buckets = build_timeline(run.tracer.records, bucket_width=10.0)
        assert buckets
        # The configuration burst: organisation events in early buckets.
        assert any("organisation" in b.counts for b in buckets)
