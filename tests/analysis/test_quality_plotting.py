"""Tests for quality metrics, structure helpers, and text plotting."""

import math

import pytest

from repro.analysis import (
    ascii_chart,
    ascii_table,
    band_occupancy,
    head_graph,
    head_neighboring_graph,
    neighbor_distance_statistics,
    overlap_fraction,
    radius_statistics,
    render_structure_map,
    snapshot_to_clusters,
    structure_quality,
    to_csv,
    tree_depths,
)
from repro.baselines import Cluster, ClusterSet
from repro.core import GS3Config, Gs3Simulation
from repro.geometry import Vec2
from repro.net import uniform_disk
from repro.sim import RngStreams

CFG = GS3Config(ideal_radius=100.0, radius_tolerance=25.0)


@pytest.fixture(scope="module")
def snapshot():
    deployment = uniform_disk(350.0, 1500, RngStreams(13))
    sim = Gs3Simulation.from_deployment(deployment, CFG, seed=13)
    sim.run_to_quiescence()
    return sim.snapshot()


class TestSnapshotToClusters:
    def test_covers_every_classified_node(self, snapshot):
        clusters = snapshot_to_clusters(snapshot)
        classified = set(snapshot.heads) | {
            a
            for a, v in snapshot.associates.items()
            if v.head_id in snapshot.heads
        }
        assert clusters.covered_ids() == classified

    def test_radii_within_gs3_bound(self, snapshot):
        clusters = snapshot_to_clusters(snapshot)
        # Boundary cells may reach sqrt(3)R + 2R_t.
        bound = math.sqrt(3) * CFG.ideal_radius + 2 * CFG.radius_tolerance
        assert max(clusters.radii()) <= bound + 1e-6


class TestQualityMetrics:
    def test_radius_statistics(self, snapshot):
        stats = radius_statistics(snapshot_to_clusters(snapshot))
        assert stats.count == len(snapshot.heads)
        assert 0 < stats.mean < CFG.ideal_radius * 2.5

    def test_neighbor_distance_statistics(self, snapshot):
        stats = neighbor_distance_statistics(snapshot)
        assert stats.min >= CFG.neighbor_distance_low - 1e-6
        assert stats.max <= CFG.neighbor_distance_high + 1e-6

    def test_gs3_overlap_is_low(self, snapshot):
        clusters = snapshot_to_clusters(snapshot)
        assert overlap_fraction(clusters) < 0.35

    def test_overlapping_clusters_detected(self):
        # Two co-located clusters: members of each lie inside the other.
        a = Cluster(0, Vec2(0, 0), (1,), (Vec2(10, 0),))
        b = Cluster(2, Vec2(1, 0), (3,), (Vec2(-9, 0),))
        assert overlap_fraction(ClusterSet((a, b))) == 1.0

    def test_structure_quality_scorecard(self, snapshot):
        quality = structure_quality(
            snapshot_to_clusters(snapshot),
            radius_bound=math.sqrt(3) * CFG.ideal_radius
            + 2 * CFG.radius_tolerance,
        )
        assert quality.head_count == len(snapshot.heads)
        assert quality.radius_violations == 0
        assert quality.as_dict()["head_count"] == quality.head_count


class TestStructureHelpers:
    def test_head_graph_edges_match_children(self, snapshot):
        graph = head_graph(snapshot)
        assert set(graph) == set(snapshot.heads)
        total_edges = sum(len(v) for v in graph.values())
        assert total_edges == len(snapshot.heads) - 1  # tree

    def test_head_neighboring_graph_symmetric(self, snapshot):
        graph = head_neighboring_graph(snapshot)
        for node, neighbors in graph.items():
            for other in neighbors:
                assert node in graph[other]

    def test_band_occupancy(self, snapshot):
        occupancy = band_occupancy(snapshot)
        assert occupancy[0] == 1
        assert occupancy[1] == 6

    def test_tree_depths(self, snapshot):
        depths = tree_depths(snapshot)
        assert sorted(d for d in depths.values() if d == 0) == [0]
        assert all(d >= 0 for d in depths.values())


class TestPlotting:
    def test_ascii_chart_renders(self):
        chart = ascii_chart(
            {"theory": [(0, 1.0), (1, 0.5), (2, 0.1)]},
            title="decay",
            width=30,
            height=8,
        )
        assert "decay" in chart
        assert "*" in chart

    def test_ascii_chart_empty(self):
        assert "(no data)" in ascii_chart({"empty": []})

    def test_ascii_chart_two_series(self):
        chart = ascii_chart(
            {"a": [(0, 0), (1, 1)], "b": [(0, 1), (1, 0)]}
        )
        assert "*" in chart and "o" in chart

    def test_ascii_table(self):
        table = ascii_table(
            ["name", "value"], [["x", 1.25], ["yy", 3]], title="t"
        )
        assert "name" in table
        assert "1.25" in table

    def test_render_structure_map(self, snapshot):
        art = render_structure_map(
            snapshot.head_positions(),
            [v.position for v in snapshot.associates.values()],
            title="figure 4",
        )
        assert "#" in art
        assert "." in art

    def test_render_empty_map(self):
        assert "(empty structure)" in render_structure_map([])

    def test_to_csv(self):
        csv = to_csv(["a", "b"], [[1, 2.5], [3, 4.0]])
        lines = csv.strip().split("\n")
        assert lines[0] == "a,b"
        assert lines[1] == "1,2.5"
