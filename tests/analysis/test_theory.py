"""Tests for the closed-form Figure 7/8 results."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.analysis import (
    empty_disk_probability,
    expected_non_ideal_cells,
    figure7_curve,
    figure8_curve,
    gap_region_diameter,
    non_ideal_cell_ratio,
    poisson_pmf,
)


class TestPoissonPmf:
    def test_zero_mean(self):
        assert poisson_pmf(0, 0.0) == 1.0
        assert poisson_pmf(1, 0.0) == 0.0

    def test_matches_formula(self):
        assert poisson_pmf(3, 2.0) == pytest.approx(
            math.exp(-2.0) * 2.0**3 / 6.0
        )

    def test_negative_k(self):
        assert poisson_pmf(-1, 2.0) == 0.0

    @given(st.floats(min_value=0.1, max_value=20.0))
    def test_sums_to_one(self, mean):
        total = sum(poisson_pmf(k, mean) for k in range(200))
        assert total == pytest.approx(1.0, abs=1e-6)


class TestAlpha:
    def test_formula(self):
        assert empty_disk_probability(2.0, 10.0) == pytest.approx(
            math.exp(-40.0)
        )

    def test_zero_tolerance(self):
        assert empty_disk_probability(0.0, 10.0) == 1.0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            empty_disk_probability(-1.0, 10.0)

    @given(
        st.floats(min_value=0.0, max_value=10.0),
        st.floats(min_value=0.0, max_value=50.0),
    )
    def test_is_probability(self, rt, lam):
        assert 0.0 <= empty_disk_probability(rt, lam) <= 1.0

    @given(st.floats(min_value=0.1, max_value=5.0))
    def test_decreasing_in_tolerance(self, rt):
        assert empty_disk_probability(rt + 0.1, 10.0) < (
            empty_disk_probability(rt, 10.0)
        )


class TestFigure7:
    def test_ratio_equals_alpha(self):
        assert non_ideal_cell_ratio(1.5, 10.0) == empty_disk_probability(
            1.5, 10.0
        )

    def test_expected_count(self):
        assert expected_non_ideal_cells(100, 1.0, 10.0) == pytest.approx(
            100 * math.exp(-10.0)
        )

    def test_negative_cells_rejected(self):
        with pytest.raises(ValueError):
            expected_non_ideal_cells(-1, 1.0, 10.0)

    def test_headline_claim(self):
        # Paper: ratio ~ 0 once R_t / R >= 0.02 with R=100, lambda=10.
        ratio_at_002 = non_ideal_cell_ratio(0.02 * 100.0, 10.0)
        assert ratio_at_002 < 1e-15

    def test_curve_shape(self):
        curve = figure7_curve([0.005, 0.01, 0.02, 0.05])
        ys = [y for _, y in curve]
        assert ys == sorted(ys, reverse=True)  # monotone decreasing
        assert ys[0] > 0.05  # visible at the left edge
        assert ys[-1] < 1e-15


class TestFigure8:
    def test_formula(self):
        alpha = empty_disk_probability(1.0, 10.0)
        expected = 2.0 * 100.0 * alpha / (1 - alpha) ** 2
        assert gap_region_diameter(100.0, 1.0, 10.0) == pytest.approx(
            expected
        )

    def test_infinite_at_zero_tolerance(self):
        assert gap_region_diameter(100.0, 0.0, 10.0) == math.inf

    def test_headline_claim(self):
        assert gap_region_diameter(100.0, 0.02 * 100.0, 10.0) < 1e-10

    def test_curve_matches_pointwise(self):
        curve = figure8_curve([0.01, 0.02])
        for ratio, value in curve:
            assert value == pytest.approx(
                gap_region_diameter(100.0, ratio * 100.0, 10.0)
            )
