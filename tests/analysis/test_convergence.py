"""Unit tests for convergence/healing measurement helpers."""

import math

import pytest

from repro.analysis import changed_cells, impact_radius, tree_edges
from repro.core import NodeStatus, NodeView, StructureSnapshot
from repro.geometry import HexLattice, Vec2

R = 100.0
LATTICE = HexLattice(Vec2(0, 0), math.sqrt(3) * R)


def head_view(node_id, axial, parent_id):
    il = LATTICE.point(axial)
    return NodeView(
        node_id=node_id,
        position=il,
        status=NodeStatus.WORK,
        alive=True,
        is_big=(node_id == 0),
        cell_axial=axial,
        current_il=il,
        oil=il,
        icc_icp=(0, 0),
        parent_id=parent_id,
        hops_to_root=0 if parent_id == node_id else 1,
        head_id=None,
        is_candidate=False,
    )


def snapshot_of(views):
    return StructureSnapshot(
        time=0.0,
        ideal_radius=R,
        radius_tolerance=25.0,
        lattice=LATTICE,
        big_id=0,
        views={v.node_id: v for v in views},
    )


def three_cell_snapshot(parent_of_two=1):
    return snapshot_of(
        [
            head_view(0, (0, 0), 0),
            head_view(1, (1, 0), 0),
            head_view(2, (2, -1), parent_of_two),
        ]
    )


class TestTreeEdges:
    def test_edges_by_cell(self):
        edges = tree_edges(three_cell_snapshot())
        assert edges[(0, 0)] == (0, 0)  # root self-edge
        assert edges[(1, 0)] == (0, 0)
        assert edges[(2, -1)] == (1, 0)

    def test_missing_parent_is_none(self):
        snap = snapshot_of(
            [head_view(0, (0, 0), 0), head_view(1, (1, 0), 99)]
        )
        assert tree_edges(snap)[(1, 0)] is None


class TestChangedCells:
    def test_no_change(self):
        assert changed_cells(three_cell_snapshot(), three_cell_snapshot()) == []

    def test_reparent_detected(self):
        before = three_cell_snapshot(parent_of_two=1)
        after = three_cell_snapshot(parent_of_two=0)
        assert changed_cells(before, after) == [(2, -1)]

    def test_disappeared_cell_detected(self):
        before = three_cell_snapshot()
        after = snapshot_of(
            [head_view(0, (0, 0), 0), head_view(1, (1, 0), 0)]
        )
        assert changed_cells(before, after) == [(2, -1)]

    def test_new_cell_detected(self):
        before = snapshot_of([head_view(0, (0, 0), 0)])
        after = snapshot_of(
            [head_view(0, (0, 0), 0), head_view(1, (1, 0), 0)]
        )
        assert changed_cells(before, after) == [(1, 0)]


class TestImpactRadius:
    def test_zero_when_unchanged(self):
        snap = three_cell_snapshot()
        assert impact_radius(snap, snap, Vec2(0, 0)) == 0.0

    def test_radius_of_changed_head(self):
        before = three_cell_snapshot(parent_of_two=1)
        after = three_cell_snapshot(parent_of_two=0)
        center = Vec2(0, 0)
        expected = LATTICE.point((2, -1)).distance_to(center)
        assert impact_radius(before, after, center) == pytest.approx(
            expected
        )

    def test_uses_before_position_for_dead_cells(self):
        before = three_cell_snapshot()
        after = snapshot_of(
            [head_view(0, (0, 0), 0), head_view(1, (1, 0), 0)]
        )
        radius = impact_radius(before, after, Vec2(0, 0))
        assert radius == pytest.approx(
            LATTICE.point((2, -1)).distance_to(Vec2(0, 0))
        )
