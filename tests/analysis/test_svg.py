"""Tests for the SVG structure renderer."""

import xml.etree.ElementTree as ET

import pytest

from repro.analysis.svg import structure_svg, write_structure_svg
from repro.core import GS3Config, Gs3Simulation
from repro.net import uniform_disk
from repro.sim import RngStreams

CFG = GS3Config(ideal_radius=100.0, radius_tolerance=25.0)


@pytest.fixture(scope="module")
def snapshot():
    deployment = uniform_disk(280.0, 800, RngStreams(61))
    sim = Gs3Simulation.from_deployment(deployment, CFG, seed=61)
    sim.run_to_quiescence()
    return sim.snapshot()


class TestStructureSvg:
    def test_valid_xml(self, snapshot):
        svg = structure_svg(snapshot)
        root = ET.fromstring(svg)
        assert root.tag.endswith("svg")

    def test_contains_cells_heads_and_edges(self, snapshot):
        svg = structure_svg(snapshot)
        assert svg.count("<polygon") == len(snapshot.heads)
        # A circle per associate + per head (+ ring for the big node).
        assert svg.count("<circle") >= len(snapshot.associates) + len(
            snapshot.heads
        )
        assert svg.count("<line") == len(snapshot.head_graph_edges)

    def test_title_rendered(self, snapshot):
        svg = structure_svg(snapshot, title="hello world")
        assert "hello world" in svg

    def test_dimensions(self, snapshot):
        svg = structure_svg(snapshot, width=400, height=300)
        assert 'width="400"' in svg
        assert 'height="300"' in svg

    def test_write_to_file(self, snapshot, tmp_path):
        path = tmp_path / "structure.svg"
        returned = write_structure_svg(snapshot, str(path))
        assert returned == str(path)
        content = path.read_text()
        ET.fromstring(content)

    def test_empty_snapshot(self, snapshot):
        from dataclasses import replace

        empty = replace(snapshot, views={})
        svg = structure_svg(empty)
        ET.fromstring(svg)
