"""Timer wheel properties: the calendar queue vs the one-shot heap.

The scale refactor moved recurring timers off the global event heap
onto a bucketed timer wheel (``Simulator.schedule_recurring``).  The
contract is that the wheel is *semantically invisible*: events keep
their ``(time, seq)`` keys from the shared counter, the run loop
executes the globally smallest key across both structures, handles
cancel the same way, and ``pending_events`` stays exact.  These tests
pin that equivalence, plus the ``PeriodicTimer.start()`` re-arm leak
fix that rode along.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import PeriodicTimer, SimulationError, Simulator

DELAYS = st.sampled_from([0.0, 0.25, 0.5, 1.0, 1.0, 2.0, 3.75, 7.0])


@st.composite
def mixed_case(draw):
    """A mix of one-shot and wheel events with pre-cancellations."""
    n = draw(st.integers(min_value=1, max_value=40))
    events = draw(
        st.lists(
            st.tuples(st.booleans(), DELAYS), min_size=n, max_size=n
        )
    )
    pre_cancels = draw(st.sets(st.integers(0, n - 1), max_size=n))
    width = draw(st.sampled_from([0.5, 1.0, 3.0, 10.0]))
    return events, pre_cancels, width


class TestWheelHeapEquivalence:
    @given(mixed_case())
    @settings(max_examples=200, deadline=None)
    def test_execution_order_matches_single_heap(self, case):
        """Interleaved schedule/schedule_recurring executes in the
        exact (time, seq) order a single heap would produce."""
        events, pre_cancels, width = case
        sim = Simulator(timer_bucket_width=width)
        executed = []
        handles = []
        for i, (recurring, delay) in enumerate(events):
            cb = lambda i=i: executed.append(i)
            if recurring:
                handles.append(sim.schedule_recurring(delay, cb))
            else:
                handles.append(sim.schedule(delay, cb))
        for i in pre_cancels:
            handles[i].cancel()
        assert sim.pending_events == len(events) - len(pre_cancels)
        sim.run()
        expected = [
            i
            for i in sorted(
                range(len(events)), key=lambda i: (events[i][1], i)
            )
            if i not in pre_cancels
        ]
        assert executed == expected
        assert sim.pending_events == 0
        assert all(not h.active for h in handles)

    @given(mixed_case())
    @settings(max_examples=100, deadline=None)
    def test_run_until_deadline_equivalent(self, case):
        """run(until=...) stops at the same point for both layouts."""
        events, pre_cancels, width = case
        deadline = 2.0

        def build(use_wheel):
            sim = Simulator(timer_bucket_width=width)
            executed = []
            handles = []
            for i, (recurring, delay) in enumerate(events):
                cb = lambda i=i, e=executed: e.append(i)
                if recurring and use_wheel:
                    handles.append(sim.schedule_recurring(delay, cb))
                else:
                    handles.append(sim.schedule(delay, cb))
            for i in pre_cancels:
                handles[i].cancel()
            return sim, executed

        wheel_sim, wheel_exec = build(True)
        heap_sim, heap_exec = build(False)
        assert wheel_sim.run(until=deadline) == heap_sim.run(until=deadline)
        assert wheel_exec == heap_exec
        assert wheel_sim.pending_events == heap_sim.pending_events
        assert wheel_sim.next_event_time() == heap_sim.next_event_time()
        # Drain the rest; the tails agree too.
        wheel_sim.run()
        heap_sim.run()
        assert wheel_exec == heap_exec

    @given(st.data())
    @settings(max_examples=100, deadline=None)
    def test_pending_counter_tracks_brute_force(self, data):
        """schedule/schedule_recurring/cancel/step keep the O(1)
        counter equal to the brute-force live count."""
        sim = Simulator(timer_bucket_width=1.0)
        handles = []
        live = 0
        for _ in range(data.draw(st.integers(1, 40))):
            action = data.draw(
                st.sampled_from(["schedule", "recurring", "cancel", "step"])
            )
            if action == "schedule":
                handles.append(sim.schedule(data.draw(DELAYS), lambda: None))
                live += 1
            elif action == "recurring":
                handles.append(
                    sim.schedule_recurring(data.draw(DELAYS), lambda: None)
                )
                live += 1
            elif action == "cancel" and handles:
                handle = handles[data.draw(st.integers(0, len(handles) - 1))]
                if handle.active:
                    live -= 1
                handle.cancel()
            elif action == "step":
                if sim.step():
                    live -= 1
            assert sim.pending_events == live
            assert sim.pending_events == sum(1 for h in handles if h.active)

    def test_mid_run_cancellation_of_wheel_event(self):
        sim = Simulator(timer_bucket_width=1.0)
        executed = []
        victim = sim.schedule_recurring(2.0, lambda: executed.append("victim"))
        sim.schedule(1.0, victim.cancel)
        sim.schedule_recurring(3.0, lambda: executed.append("survivor"))
        sim.run()
        assert executed == ["survivor"]
        assert sim.pending_events == 0

    def test_negative_delay_rejected(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.schedule_recurring(-0.5, lambda: None)

    def test_next_event_time_sees_wheel(self):
        sim = Simulator(timer_bucket_width=1.0)
        sim.schedule(5.0, lambda: None)
        sim.schedule_recurring(2.0, lambda: None)
        assert sim.next_event_time() == 2.0

    def test_next_event_time_skips_cancelled_wheel_entry(self):
        sim = Simulator(timer_bucket_width=1.0)
        handle = sim.schedule_recurring(2.0, lambda: None)
        sim.schedule_recurring(4.0, lambda: None)
        handle.cancel()
        assert sim.next_event_time() == 4.0

    def test_wheel_only_run_advances_clock_to_until(self):
        sim = Simulator(timer_bucket_width=1.0)
        timer = PeriodicTimer(sim, 1.0, lambda: None)
        timer.start()
        assert sim.run(until=10.5) == 10.5
        timer.stop()
        assert sim.run(until=12.0) == 12.0


class TestManyTimers:
    def test_large_population_fires_in_order(self):
        """A few thousand staggered recurring timers fire in exact
        global time order, interleaved with one-shot traffic."""
        sim = Simulator(timer_bucket_width=5.0)
        fired = []
        rng = random.Random(7)
        timers = []
        for i in range(2000):
            interval = 5.0 + rng.random()
            timer = PeriodicTimer(
                sim, interval, lambda i=i: fired.append((sim.now, i))
            )
            timer.start(initial_delay=rng.random() * interval)
            timers.append(timer)
        for _ in range(200):
            sim.schedule(rng.random() * 40.0, lambda: fired.append((sim.now, -1)))
        sim.run(until=40.0)
        assert fired == sorted(fired, key=lambda pair: pair[0])
        assert len(fired) > 2000 * 5  # several full periods elapsed
        for timer in timers:
            assert timer.active
            timer.stop()
        assert sim.pending_events == 0


class TestPeriodicTimerRearm:
    def test_start_on_armed_timer_cancels_old_chain(self):
        """Regression: start() on an armed timer must not leak the old
        pending firing into a duplicate chain."""
        sim = Simulator()
        fires = []
        timer = PeriodicTimer(sim, 10.0, lambda: fires.append(sim.now))
        timer.start()
        assert sim.pending_events == 1
        timer.start()  # re-arm while armed: old firing cancelled
        assert sim.pending_events == 1
        sim.run(until=100.0)
        # One firing per interval — a leaked chain would double this.
        assert len(fires) == 10
        timer.stop()

    def test_restart_from_callback_does_not_duplicate(self):
        """start() from inside the callback wins over the tail re-arm."""
        sim = Simulator()
        fires = []

        def callback():
            fires.append(sim.now)
            if len(fires) == 1:
                timer.start(initial_delay=3.0)  # reschedule self

        timer = PeriodicTimer(sim, 10.0, callback)
        timer.start()
        sim.run(until=60.0)
        timer.stop()
        assert sim.pending_events == 0
        # t=10 (restart +3), then 13, 23, 33, 43, 53.
        assert fires == [10.0, 13.0, 23.0, 33.0, 43.0, 53.0]

    def test_stop_then_start_single_chain(self):
        sim = Simulator()
        fires = []
        timer = PeriodicTimer(sim, 5.0, lambda: fires.append(sim.now))
        timer.start()
        timer.stop()
        timer.start()
        sim.run(until=26.0)
        timer.stop()
        assert fires == [5.0, 10.0, 15.0, 20.0, 25.0]


class TestWheelEdgeCases:
    def test_recurring_exactly_on_bucket_boundary(self):
        """Firings landing exactly on ``k * bucket_width`` stay exact.

        ``int(time // width)`` puts a boundary instant in the *later*
        bucket; the contract is that bucket assignment never shifts the
        firing time or its order against one-shots at the same time.
        """
        sim = Simulator(timer_bucket_width=10.0)
        order = []
        timer = PeriodicTimer(sim, 10.0, lambda: order.append(("timer", sim.now)))
        timer.start(initial_delay=10.0)  # fires at exact multiples of width
        for t in (10.0, 20.0, 30.0):
            sim.schedule(t, lambda t=t: order.append(("oneshot", t)))
        sim.run(until=35.0)
        timer.stop()
        # The timer armed first at each boundary, so its seq is lower
        # than the later-scheduled one-shot at t=10; re-arms claim new
        # seqs, so subsequent boundaries run the one-shot first.
        assert order == [
            ("timer", 10.0),
            ("oneshot", 10.0),
            ("oneshot", 20.0),
            ("timer", 20.0),
            ("oneshot", 30.0),
            ("timer", 30.0),
        ]
        assert sim.now == 35.0

    def test_interval_hint_retune_mid_run_is_ignored(self):
        """The wheel's width is fixed by the first recurring arm; a
        different ``interval_hint`` later must not re-bucket anything —
        execution order stays the single-heap order."""
        sim = Simulator()
        fires = []
        slow = PeriodicTimer(sim, 16.0, lambda: fires.append(("slow", sim.now)))
        slow.start(initial_delay=16.0)  # fixes width at 16
        sim.run(until=20.0)
        # Mid-run retune: a much finer timer with its own hint.
        fast = PeriodicTimer(sim, 3.0, lambda: fires.append(("fast", sim.now)))
        fast.start(initial_delay=1.0)
        sim.run(until=40.0)
        slow.stop()
        fast.stop()
        assert [f for f in fires if f[0] == "slow"] == [
            ("slow", 16.0),
            ("slow", 32.0),
        ]
        assert [f for f in fires if f[0] == "fast"] == [
            ("fast", 21.0),
            ("fast", 24.0),
            ("fast", 27.0),
            ("fast", 30.0),
            ("fast", 33.0),
            ("fast", 36.0),
            ("fast", 39.0),
        ]
        # The merged stream is globally time-ordered.
        times = [t for _, t in fires]
        assert times == sorted(times)

    def test_run_for_ends_inside_bucket(self):
        """``run_for`` stopping strictly inside a bucket executes only
        the entries at or before the deadline; the rest of the bucket
        drains on the next run."""
        sim = Simulator(timer_bucket_width=10.0)
        fired = []
        # All four land in bucket [10, 20); the deadline cuts it at 14.
        for delay in (11.0, 13.0, 17.0, 19.0):
            sim.schedule_recurring(delay, lambda d=delay: fired.append(d))
        sim.run_for(14.0)
        assert fired == [11.0, 13.0]
        assert sim.now == 14.0
        assert sim.pending_events == 2
        sim.run()
        assert fired == [11.0, 13.0, 17.0, 19.0]
        assert sim.pending_events == 0

    def test_periodic_chain_survives_mid_bucket_deadline(self):
        """A periodic timer whose next firing sits past a mid-bucket
        deadline keeps its chain across run() calls."""
        sim = Simulator(timer_bucket_width=8.0)
        fires = []
        timer = PeriodicTimer(sim, 4.0, lambda: fires.append(sim.now))
        timer.start()
        sim.run(until=10.0)  # inside bucket [8, 16)
        assert fires == [4.0, 8.0]
        sim.run(until=21.0)
        timer.stop()
        assert fires == [4.0, 8.0, 12.0, 16.0, 20.0]


class TestWritableMaxEvents:
    def test_default_and_write(self):
        sim = Simulator()
        assert sim.max_events == 50_000_000
        sim.max_events = 123
        assert sim.max_events == 123

    def test_rejects_non_positive(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.max_events = 0
        with pytest.raises(SimulationError):
            sim.max_events = -5

    def test_ceiling_enforced_and_raisable(self):
        sim = Simulator()
        sim.max_events = 10

        def rearm():
            sim.schedule(1.0, rearm)

        sim.schedule(1.0, rearm)
        with pytest.raises(SimulationError, match="max_events"):
            sim.run(until=1_000.0)
        # The tripping event is consumed without running its callback,
        # so the chain is broken; a raised ceiling lets a fresh chain
        # run further before tripping again.
        executed = sim.executed_events
        sim.max_events = executed + 10
        sim.schedule(1.0, rearm)
        with pytest.raises(SimulationError, match="max_events"):
            sim.run(until=1_000.0)
        assert sim.executed_events > executed

    def test_recurring_counts_against_ceiling(self):
        sim = Simulator()
        sim.max_events = 5
        timer = PeriodicTimer(sim, 1.0, lambda: None)
        timer.start()
        with pytest.raises(SimulationError, match="max_events"):
            sim.run(until=100.0)
        timer.stop()
