"""The shared nearest-rank percentile helper (repro.sim.metrics)."""

import pytest

from repro.sim import percentile


class TestSharedPercentile:
    def test_p0_is_minimum(self):
        assert percentile([1.0, 2.0, 3.0, 4.0, 5.0], 0.0) == 1.0

    def test_p50_is_nearest_rank_median(self):
        assert percentile([1.0, 2.0, 3.0, 4.0, 5.0], 0.5) == 3.0
        assert percentile([1.0, 2.0, 3.0, 4.0], 0.5) == 2.0

    def test_p100_is_maximum(self):
        assert percentile([1.0, 2.0, 3.0, 4.0, 5.0], 1.0) == 5.0

    def test_intermediate_ranks(self):
        values = [1.0, 2.0, 3.0, 4.0]
        assert percentile(values, 0.75) == 3.0
        assert percentile(values, 0.99) == 4.0

    def test_single_element_for_every_q(self):
        for q in (0.0, 0.25, 0.5, 0.99, 1.0):
            assert percentile([7.0], q) == 7.0

    def test_empty_raises(self):
        with pytest.raises(ValueError, match="empty"):
            percentile([], 0.5)

    def test_q_out_of_range_raises(self):
        with pytest.raises(ValueError, match="q must be"):
            percentile([1.0], -0.1)
        with pytest.raises(ValueError, match="q must be"):
            percentile([1.0], 1.1)
