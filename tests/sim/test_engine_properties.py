"""Property tests: the tuple-heap engine vs a reference model.

The PR-2 engine swapped ``@dataclass(order=True)`` heap entries for
plain ``(time, seq, event)`` tuples with ``__slots__`` records and a
live-event counter.  These properties pin the semantics the rest of
the system relies on:

* timestamp order with FIFO among equal timestamps;
* cancellation (before run, mid-run from callbacks, after run) never
  executes a cancelled event and never corrupts the pending counter;
* ``EventHandle.active`` means "still pending" — false after the event
  executes, not just after cancellation.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import Simulator

#: A small delay alphabet forces plenty of equal-timestamp collisions.
DELAYS = st.sampled_from([0.0, 0.5, 1.0, 1.0, 1.0, 2.0, 3.5])


@st.composite
def sweep_case(draw):
    n = draw(st.integers(min_value=1, max_value=30))
    delays = draw(st.lists(DELAYS, min_size=n, max_size=n))
    pre_cancels = draw(st.sets(st.integers(0, n - 1), max_size=n))
    # Optional mid-run action: when event i executes it cancels event j.
    cancel_map = draw(
        st.dictionaries(
            st.integers(0, n - 1), st.integers(0, n - 1), max_size=n
        )
    )
    return delays, pre_cancels, cancel_map


def reference_execution(delays, pre_cancels, cancel_map):
    """Pure-python model: time order, FIFO ties, cancel-on-execute."""
    order = sorted(range(len(delays)), key=lambda i: (delays[i], i))
    cancelled = set(pre_cancels)
    executed = []
    for i in order:
        if i in cancelled:
            continue
        executed.append(i)
        target = cancel_map.get(i)
        if target is not None and target not in executed:
            cancelled.add(target)
    return executed


@given(sweep_case())
@settings(max_examples=200, deadline=None)
def test_execution_matches_reference_model(case):
    delays, pre_cancels, cancel_map = case
    n = len(delays)
    sim = Simulator()
    executed = []
    handles = []

    def make_callback(i):
        def callback():
            executed.append(i)
            target = cancel_map.get(i)
            if target is not None:
                handles[target].cancel()

        return callback

    for i in range(n):
        handles.append(sim.schedule(delays[i], make_callback(i)))
    for i in pre_cancels:
        handles[i].cancel()
    assert sim.pending_events == n - len(pre_cancels)

    sim.run()

    assert executed == reference_execution(delays, pre_cancels, cancel_map)
    # The live counter drained exactly; no double decrements anywhere.
    assert sim.pending_events == 0
    # ``active`` means still pending: false for executed AND cancelled.
    assert all(not h.active for h in handles)
    # Cancelling after the fact is a no-op and cannot corrupt the
    # counter into negative territory.
    for h in handles:
        h.cancel()
    assert sim.pending_events == 0


@given(st.lists(DELAYS, min_size=1, max_size=25))
@settings(max_examples=100, deadline=None)
def test_fifo_among_equal_timestamps(delays):
    sim = Simulator()
    executed = []
    for i, delay in enumerate(delays):
        sim.schedule(delay, lambda i=i: executed.append(i))
    sim.run()
    assert executed == sorted(
        range(len(delays)), key=lambda i: (delays[i], i)
    )


@given(st.data())
@settings(max_examples=100, deadline=None)
def test_pending_counter_tracks_brute_force(data):
    """Interleave schedule/cancel/step; the O(1) counter always equals
    the brute-force count of live events."""
    sim = Simulator()
    handles = []
    live = 0
    for _ in range(data.draw(st.integers(1, 40))):
        action = data.draw(st.sampled_from(["schedule", "cancel", "step"]))
        if action == "schedule":
            handles.append(
                sim.schedule(data.draw(DELAYS), lambda: None)
            )
            live += 1
        elif action == "cancel" and handles:
            handle = handles[data.draw(st.integers(0, len(handles) - 1))]
            if handle.active:
                live -= 1
            handle.cancel()
        elif action == "step":
            if sim.step():
                live -= 1
        assert sim.pending_events == live
        assert sim.pending_events == sum(1 for h in handles if h.active)
