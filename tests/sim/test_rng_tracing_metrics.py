"""Tests for RNG streams, tracing and metric accumulators."""

import statistics

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.sim import MetricSet, RngStreams, Summary, Tracer, derive_seed


class TestRngStreams:
    def test_same_seed_same_sequence(self):
        a = RngStreams(42).stream("deploy")
        b = RngStreams(42).stream("deploy")
        assert [a.random() for _ in range(5)] == [b.random() for _ in range(5)]

    def test_different_names_differ(self):
        streams = RngStreams(42)
        xs = [streams.stream("a").random() for _ in range(5)]
        ys = [streams.stream("b").random() for _ in range(5)]
        assert xs != ys

    def test_different_seeds_differ(self):
        xs = [RngStreams(1).stream("x").random() for _ in range(5)]
        ys = [RngStreams(2).stream("x").random() for _ in range(5)]
        assert xs != ys

    def test_stream_is_cached(self):
        streams = RngStreams(0)
        assert streams.stream("x") is streams.stream("x")

    def test_fork_independent(self):
        parent = RngStreams(7)
        child = parent.fork("child")
        assert parent.stream("s").random() != child.stream("s").random()

    def test_derive_seed_stable(self):
        assert derive_seed(1, "x") == derive_seed(1, "x")
        assert derive_seed(1, "x") != derive_seed(1, "y")


class TestTracer:
    def test_counts(self):
        tracer = Tracer()
        tracer.emit(1.0, "msg.send", node=3)
        tracer.emit(2.0, "msg.send", node=4)
        tracer.emit(2.5, "head.selected", node=4)
        assert tracer.count("msg.send") == 2
        assert tracer.count("head.selected") == 1
        assert tracer.count("nothing") == 0

    def test_count_prefix(self):
        tracer = Tracer()
        tracer.emit(1.0, "msg.send")
        tracer.emit(1.0, "msg.recv")
        tracer.emit(1.0, "head.selected")
        assert tracer.count_prefix("msg.") == 2

    def test_records_and_details(self):
        tracer = Tracer()
        tracer.emit(1.0, "cell.shift", node=9, new_il=(1, 0))
        [record] = list(tracer.by_category("cell.shift"))
        assert record.node == 9
        assert record.detail("new_il") == (1, 0)
        assert record.detail("missing", "default") == "default"

    def test_last_time(self):
        tracer = Tracer()
        tracer.emit(1.0, "a")
        tracer.emit(5.0, "b")
        tracer.emit(3.0, "a")
        assert tracer.last_time("a") == 3.0
        assert tracer.last_time() == 5.0
        assert tracer.last_time("zzz") is None

    def test_last_time_prefix(self):
        tracer = Tracer()
        tracer.emit(1.0, "msg.send")
        tracer.emit(4.0, "msg.recv")
        assert tracer.last_time_prefix("msg.") == 4.0
        assert tracer.last_time_prefix("xyz") is None

    def test_disable_record_storage(self):
        tracer = Tracer(keep_records=False)
        tracer.emit(1.0, "x")
        assert tracer.records == []
        assert tracer.count("x") == 1

    def test_listener(self):
        tracer = Tracer(keep_records=False)
        seen = []
        tracer.subscribe(seen.append)
        tracer.emit(1.0, "x", node=1)
        assert len(seen) == 1
        assert seen[0].category == "x"

    def test_clear(self):
        tracer = Tracer()
        tracer.emit(1.0, "x")
        tracer.clear()
        assert tracer.count("x") == 0
        assert tracer.records == []


class TestTracerFastPath:
    def test_disabled_tracer_drops_everything(self):
        tracer = Tracer(enabled=False)
        seen = []
        tracer.subscribe(seen.append)
        tracer.emit(1.0, "x", node=1)
        assert tracer.records == []
        assert tracer.count("x") == 0
        assert tracer.last_time("x") is None
        assert seen == []

    def test_reenabling_restores_exact_counters(self):
        tracer = Tracer(enabled=False)
        tracer.emit(1.0, "x")
        tracer.enabled = True
        tracer.emit(2.0, "x")
        tracer.emit(3.0, "x")
        # Counters are exact over the enabled period.
        assert tracer.count("x") == 2
        assert tracer.last_time("x") == 3.0

    def test_radio_fallback_tracer_is_disabled(self):
        from repro.geometry import Vec2
        from repro.net import Network, Radio
        from repro.sim import Simulator

        net = Network(cell_size=50.0)
        a = net.add_node(Vec2(0.0, 0.0), 50.0)
        b = net.add_node(Vec2(10.0, 0.0), 50.0)
        sim = Simulator()
        radio = Radio(net, sim)
        assert not radio.tracer.enabled
        radio.register(b.node_id, lambda p, s: None)
        assert radio.unicast(a.node_id, b.node_id, "x")
        sim.run()
        # Delivery happened; the sink tracer stayed empty.
        assert radio.tracer.counts == {}


class TestTracerCapacity:
    def test_truncation_signalled(self):
        tracer = Tracer(capacity=3)
        assert not tracer.truncated
        for i in range(5):
            tracer.emit(float(i), "x")
        # Storage stops at capacity, counters keep counting ...
        assert len(tracer.records) == 3
        assert tracer.count("x") == 5
        # ... and the divergence is signalled, exactly once.
        assert tracer.truncated
        assert tracer.count("trace.capacity") == 1
        assert tracer.last_time("trace.capacity") == 3.0

    def test_no_signal_below_capacity(self):
        tracer = Tracer(capacity=10)
        for i in range(5):
            tracer.emit(float(i), "x")
        assert not tracer.truncated
        assert tracer.count("trace.capacity") == 0

    def test_no_signal_when_records_disabled(self):
        tracer = Tracer(keep_records=False, capacity=2)
        for i in range(5):
            tracer.emit(float(i), "x")
        # Nothing was dropped — storage was never requested.
        assert not tracer.truncated
        assert tracer.count("trace.capacity") == 0

    def test_clear_resets_truncation(self):
        tracer = Tracer(capacity=1)
        tracer.emit(0.0, "x")
        tracer.emit(1.0, "x")
        assert tracer.truncated
        tracer.clear()
        assert not tracer.truncated
        tracer.emit(2.0, "x")
        assert len(tracer.records) == 1


class TestSummary:
    def test_mean_min_max(self):
        s = Summary()
        for v in [1.0, 2.0, 3.0]:
            s.add(v)
        assert s.count == 3
        assert s.mean == pytest.approx(2.0)
        assert s.min == 1.0
        assert s.max == 3.0

    def test_stddev_matches_statistics(self):
        data = [3.0, 1.0, 4.0, 1.0, 5.0, 9.0]
        s = Summary()
        for v in data:
            s.add(v)
        assert s.stddev == pytest.approx(statistics.pstdev(data))

    def test_empty(self):
        s = Summary()
        assert s.variance == 0.0
        assert s.as_dict()["min"] == 0.0

    @given(
        st.lists(
            st.floats(
                min_value=-1e3,
                max_value=1e3,
                allow_nan=False,
                allow_infinity=False,
            ),
            min_size=1,
            max_size=50,
        ),
        st.lists(
            st.floats(
                min_value=-1e3,
                max_value=1e3,
                allow_nan=False,
                allow_infinity=False,
            ),
            min_size=1,
            max_size=50,
        ),
    )
    def test_merge_equals_combined(self, xs, ys):
        merged = Summary()
        for v in xs:
            merged.add(v)
        other = Summary()
        for v in ys:
            other.add(v)
        merged.merge(other)
        combined = xs + ys
        assert merged.count == len(combined)
        assert merged.mean == pytest.approx(
            statistics.fmean(combined), abs=1e-6
        )
        assert merged.stddev == pytest.approx(
            statistics.pstdev(combined), abs=1e-6
        )

    def test_merge_with_empty(self):
        s = Summary()
        s.add(1.0)
        s.merge(Summary())
        assert s.count == 1
        empty = Summary()
        empty.merge(s)
        assert empty.count == 1


class TestMetricSet:
    def test_observe_and_get(self):
        metrics = MetricSet()
        metrics.observe("latency", 1.0)
        metrics.observe("latency", 3.0)
        assert metrics.get("latency").mean == pytest.approx(2.0)
        assert metrics.get("missing") is None

    def test_names_sorted(self):
        metrics = MetricSet()
        metrics.observe("b", 1.0)
        metrics.observe("a", 1.0)
        assert metrics.names() == ["a", "b"]

    def test_as_dict(self):
        metrics = MetricSet()
        metrics.observe("x", 2.0)
        assert metrics.as_dict()["x"]["count"] == 1
