"""Tests for the durable run store and resumable sweeps."""

import json
import os
import time

import pytest

from repro.sim import (
    RunStore,
    RunStoreError,
    StoredRecord,
    SweepRunner,
    atomic_write_text,
    canonical_digest,
    canonical_json,
    parse_age,
    replicate_seed,
    run_provenance,
)
from repro.sim.parallel import ReplicateOutcome

# Module-level worker functions so they stay picklable for pool runs.

EXECUTED = []


def _square_worker(spec):
    EXECUTED.append(spec["seed"])
    return {"seed": spec["seed"], "value": spec["seed"] ** 2}


def _flaky_worker(spec):
    EXECUTED.append(spec["seed"])
    if spec.get("explode"):
        raise RuntimeError(f"boom for seed {spec['seed']}")
    return {"seed": spec["seed"]}


@pytest.fixture(autouse=True)
def _reset_executed():
    EXECUTED.clear()
    yield
    EXECUTED.clear()


def _specs(n, base=0):
    return [{"data": "demo", "seed": replicate_seed(base, i)} for i in range(n)]


class TestCanonicalJson:
    def test_key_order_independent(self):
        assert canonical_json({"b": 1, "a": [2, {"y": 0, "x": 1}]}) == (
            canonical_json({"a": [2, {"x": 1, "y": 0}], "b": 1})
        )

    def test_compact_and_sorted(self):
        assert canonical_json({"b": 1, "a": 2}) == '{"a":2,"b":1}'

    def test_rejects_nan(self):
        with pytest.raises(ValueError):
            canonical_json({"x": float("nan")})

    def test_digest_changes_with_content(self):
        assert canonical_digest({"a": 1}) != canonical_digest({"a": 2})

    def test_digest_stable(self):
        # A pinned digest guards the cross-process content address: any
        # serialisation change silently orphans every existing store.
        assert canonical_digest({"a": 1}) == (
            "015abd7f5cc57a2dd94b7590f04ad8084273905ee33ec5cebeae62276a97f862"
        )


class TestAtomicWriteText:
    def test_writes_and_replaces(self, tmp_path):
        path = tmp_path / "sub" / "out.txt"
        atomic_write_text(path, "one")
        assert path.read_text(encoding="utf-8") == "one"
        atomic_write_text(path, "two")
        assert path.read_text(encoding="utf-8") == "two"

    def test_leaves_no_temp_files(self, tmp_path):
        atomic_write_text(tmp_path / "out.txt", "content")
        assert sorted(p.name for p in tmp_path.iterdir()) == ["out.txt"]


class TestStoredRecord:
    def test_round_trip_ok(self):
        record = StoredRecord(seed=9, ok=True, result={"x": 1}, elapsed=0.5)
        parsed = StoredRecord.from_bytes(
            record.to_json_line().encode("utf-8")
        )
        assert parsed == record

    def test_round_trip_error(self):
        record = StoredRecord(
            seed=9, ok=False, error="Traceback ...", attempts=2
        )
        parsed = StoredRecord.from_bytes(
            record.to_json_line().encode("utf-8")
        )
        assert parsed == record

    def test_torn_line_raises_value_error(self):
        line = StoredRecord(seed=1, ok=True, result=[1, 2]).to_json_line()
        for cut in (1, len(line) // 2, len(line) - 3):
            with pytest.raises(ValueError):
                StoredRecord.from_bytes(line[:cut].encode("utf-8"))

    def test_json_line_is_canonical(self):
        line = StoredRecord(seed=1, ok=True, result={"b": 1, "a": 2})
        assert line.to_json_line() == (
            canonical_json(json.loads(line.to_json_line())) + "\n"
        )


class TestRunStore:
    def test_append_and_reload(self, tmp_path):
        store = RunStore(tmp_path)
        digest = canonical_digest({"kind": "sweep"})
        store.register_run(digest, "sweep", "scn")
        for seed in (3, 4, 11):
            store.append(digest, StoredRecord(seed=seed, ok=True, result=seed))
        reloaded = RunStore(tmp_path).load_records(digest)
        assert sorted(reloaded) == [3, 4, 11]
        assert reloaded[11].result == 11

    def test_later_records_win(self, tmp_path):
        store = RunStore(tmp_path)
        store.append("run", StoredRecord(seed=5, ok=False, error="x"))
        store.append(
            "run", StoredRecord(seed=5, ok=True, result="y", attempts=2)
        )
        records = store.load_records("run")
        assert records[5].ok and records[5].attempts == 2

    def test_unknown_run_is_empty(self, tmp_path):
        assert RunStore(tmp_path).load_records("nope") == {}

    def test_manifest_round_trip(self, tmp_path):
        store = RunStore(tmp_path)
        store.register_run("d1", "sweep", "s1")
        store.update_run("d1", 7)
        runs = RunStore(tmp_path).runs()
        assert runs["d1"]["kind"] == "sweep"
        assert runs["d1"]["records"] == 7

    def test_rejects_unreadable_manifest(self, tmp_path):
        (tmp_path / RunStore.MANIFEST).write_text("{not json", "utf-8")
        with pytest.raises(RunStoreError, match="unreadable manifest"):
            RunStore(tmp_path)

    def test_rejects_future_manifest_version(self, tmp_path):
        (tmp_path / RunStore.MANIFEST).write_text(
            json.dumps({"version": 99, "runs": {}}), "utf-8"
        )
        with pytest.raises(RunStoreError, match="version"):
            RunStore(tmp_path)

    def test_sharding_never_loses_records(self, tmp_path):
        store = RunStore(tmp_path, shard_count=3)
        seeds = list(range(20))
        for seed in seeds:
            store.append("run", StoredRecord(seed=seed, ok=True, result=seed))
        shards = list((tmp_path / "runs" / "run").glob("shard-*.jsonl"))
        assert len(shards) == 3
        assert sorted(store.load_records("run")) == seeds


class TestTornTailRecovery:
    def _shard_with(self, tmp_path, records):
        store = RunStore(tmp_path, shard_count=1)
        for record in records:
            store.append("run", record)
        return store, tmp_path / "runs" / "run" / "shard-0.jsonl"

    def test_truncated_final_record_is_dropped(self, tmp_path):
        records = [
            StoredRecord(seed=s, ok=True, result={"seed": s}) for s in range(3)
        ]
        _, shard = self._shard_with(tmp_path, records)
        raw = shard.read_bytes()
        torn_at = raw.rstrip(b"\n").rfind(b"\n") + 1 + 7  # mid-final-record
        shard.write_bytes(raw[:torn_at])
        reloaded = RunStore(tmp_path, shard_count=1).load_records("run")
        assert sorted(reloaded) == [0, 1]
        # The shard was truncated back to its last complete record, so a
        # subsequent append starts on a clean line.
        assert shard.read_bytes().endswith(b"\n")

    def test_recovered_shard_accepts_new_appends(self, tmp_path):
        records = [StoredRecord(seed=s, ok=True, result=s) for s in range(2)]
        store, shard = self._shard_with(tmp_path, records)
        shard.write_bytes(shard.read_bytes()[:-5])
        store = RunStore(tmp_path, shard_count=1)
        assert sorted(store.load_records("run")) == [0]
        store.append("run", StoredRecord(seed=1, ok=True, result="redo"))
        reloaded = RunStore(tmp_path, shard_count=1).load_records("run")
        assert reloaded[1].result == "redo"

    def test_missing_trailing_newline_only(self, tmp_path):
        # A record whose bytes are complete but whose newline never made
        # it to disk is still a valid record.
        _, shard = self._shard_with(
            tmp_path, [StoredRecord(seed=7, ok=True, result=1)]
        )
        shard.write_bytes(shard.read_bytes().rstrip(b"\n"))
        assert sorted(
            RunStore(tmp_path, shard_count=1).load_records("run")
        ) == [7]

    def test_mid_shard_corruption_raises(self, tmp_path):
        records = [StoredRecord(seed=s, ok=True, result=s) for s in range(3)]
        _, shard = self._shard_with(tmp_path, records)
        raw = shard.read_bytes()
        first_end = raw.find(b"\n") + 1
        shard.write_bytes(raw[:first_end] + b"garbage\n" + raw[first_end:])
        with pytest.raises(RunStoreError, match="mid-shard"):
            RunStore(tmp_path, shard_count=1).load_records("run")


class TestResumeSession:
    def test_identity_keys_on_kind_and_content(self, tmp_path):
        store = RunStore(tmp_path)
        a = store.session("sweep", {"x": 1})
        b = store.session("chaos", {"x": 1})
        c = store.session("sweep", {"x": 2})
        assert len({a.run_digest, b.run_digest, c.run_digest}) == 3

    def test_lookup_serves_success_and_skips_when_disabled(self, tmp_path):
        store = RunStore(tmp_path)
        spec = {"seed": 42}
        with store.session("sweep", {"d": 1}) as session:
            session.record(
                spec, ReplicateOutcome(index=0, ok=True, result="r")
            )
        resumed = store.session("sweep", {"d": 1})
        cached = resumed.lookup(spec)
        assert cached is not None and cached.cached and cached.result == "r"
        fresh = store.session("sweep", {"d": 1}, resume=False)
        assert fresh.lookup(spec) is None

    def test_retry_budget(self, tmp_path):
        store = RunStore(tmp_path)
        spec = {"seed": 7}
        with store.session("sweep", {"d": 1}) as session:
            session.record(
                spec, ReplicateOutcome(index=0, ok=False, error="boom")
            )
        # attempts=1 > retries=0: the failure itself is the cached answer.
        assert store.session("sweep", {"d": 1}, retries=0).lookup(spec).cached
        # attempts=1 <= retries=1: execute again.
        retrying = store.session("sweep", {"d": 1}, retries=1)
        assert retrying.lookup(spec) is None
        retrying.record(
            spec, ReplicateOutcome(index=0, ok=False, error="boom2")
        )
        # attempts=2 > retries=1: budget exhausted, serve the failure.
        assert store.session("sweep", {"d": 1}, retries=1).lookup(spec).cached

    def test_rejects_negative_retries(self, tmp_path):
        with pytest.raises(ValueError):
            RunStore(tmp_path).session("sweep", {}, retries=-1)


class TestResumedSweeps:
    def test_interrupted_sweep_executes_exactly_the_remainder(self, tmp_path):
        store = RunStore(tmp_path)
        runner = SweepRunner(_square_worker, workers=0)
        n, k = 8, 5
        baseline = runner.run(_specs(n))
        EXECUTED.clear()
        # "Interrupt" after k replicates by only submitting k of them.
        with store.session("sweep", {"d": 1}) as session:
            runner.run(_specs(k), resume=session)
        assert len(EXECUTED) == k
        EXECUTED.clear()
        with store.session("sweep", {"d": 1}) as session:
            resumed = runner.run(_specs(n), resume=session)
        assert len(EXECUTED) == n - k
        assert sorted(EXECUTED) == sorted(
            s["seed"] for s in _specs(n)[k:]
        )
        # Byte-identical aggregation: payloads match an uninterrupted run.
        assert canonical_json([o.result for o in resumed]) == (
            canonical_json([o.result for o in baseline])
        )
        assert [o.index for o in resumed] == list(range(n))
        assert [o.cached for o in resumed] == [True] * k + [False] * (n - k)

    def test_fully_cached_second_run_executes_nothing(self, tmp_path):
        store = RunStore(tmp_path)
        runner = SweepRunner(_square_worker, workers=0)
        with store.session("sweep", {"d": 1}) as session:
            first = runner.run(_specs(4), resume=session)
        EXECUTED.clear()
        with store.session("sweep", {"d": 1}) as session:
            second = runner.run(_specs(4), resume=session)
        assert EXECUTED == []
        assert all(o.cached for o in second)
        assert canonical_json([o.result for o in first]) == (
            canonical_json([o.result for o in second])
        )

    def test_crashed_replicates_retry_up_to_budget(self, tmp_path):
        store = RunStore(tmp_path)
        runner = SweepRunner(_flaky_worker, workers=0)
        specs = [
            {"seed": 1},
            {"seed": 2, "explode": True},
            {"seed": 3},
        ]
        with store.session("sweep", {"d": 1}) as session:
            first = runner.run(specs, resume=session)
        assert [o.ok for o in first] == [True, False, True]
        EXECUTED.clear()
        with store.session("sweep", {"d": 1}, retries=2) as session:
            runner.run(specs, resume=session)
        assert EXECUTED == [2]  # only the crash re-executes
        EXECUTED.clear()
        with store.session("sweep", {"d": 1}, retries=2) as session:
            runner.run(specs, resume=session)
        assert EXECUTED == [2]  # attempts=2 <= retries=2: one more try
        EXECUTED.clear()
        with store.session("sweep", {"d": 1}, retries=2) as session:
            final = runner.run(specs, resume=session)
        assert EXECUTED == []  # budget exhausted: failure served cached
        assert [o.ok for o in final] == [True, False, True]
        assert final[1].cached

    def test_growing_replicates_reuses_overlap(self, tmp_path):
        store = RunStore(tmp_path)
        runner = SweepRunner(_square_worker, workers=0)
        with store.session("sweep", {"d": 1}) as session:
            runner.run(_specs(3), resume=session)
        EXECUTED.clear()
        with store.session("sweep", {"d": 1}) as session:
            grown = runner.run(_specs(6), resume=session)
        assert len(EXECUTED) == 3
        assert [o.cached for o in grown] == [True] * 3 + [False] * 3

    def test_resume_survives_torn_tail(self, tmp_path):
        store = RunStore(tmp_path, shard_count=1)
        runner = SweepRunner(_square_worker, workers=0)
        with store.session("sweep", {"d": 1}) as session:
            runner.run(_specs(4), resume=session)
            run_digest = session.run_digest
        shard = tmp_path / "runs" / run_digest / "shard-0.jsonl"
        shard.write_bytes(shard.read_bytes()[:-9])  # tear the last record
        EXECUTED.clear()
        fresh_store = RunStore(tmp_path, shard_count=1)
        with fresh_store.session("sweep", {"d": 1}) as session:
            resumed = runner.run(_specs(4), resume=session)
        assert len(EXECUTED) == 1  # only the torn replicate re-executes
        assert canonical_json([o.result for o in resumed]) == (
            canonical_json(
                [o.result for o in SweepRunner(_square_worker, workers=0).run(_specs(4))]
            )
        )


class TestProvenance:
    def test_block_shape(self):
        block = run_provenance(
            "sweep", {"x": 1}, base_seed=7, replicates=4, workers=2
        )
        assert block["kind"] == "sweep"
        assert block["scenario_digest"] == canonical_digest({"x": 1})
        assert block["base_seed"] == 7
        assert block["replicates"] == 4
        assert block["workers"] == 2
        import repro

        assert block["package_version"] == repro.__version__


class TestRunStoreGc:
    def _seed_store(self, tmp_path):
        store = RunStore(tmp_path)
        store.register_run("runA", "sweep", "scenA")
        store.append("runA", StoredRecord(seed=1, ok=False, error="boom"))
        store.append("runA", StoredRecord(seed=2, ok=True, result={"v": 2}))
        store.append(
            "runA", StoredRecord(seed=1, ok=True, result={"v": 9}, attempts=2)
        )
        store.append("runA", StoredRecord(seed=5, ok=True, result={"v": 5}))
        store.update_run("runA", 4)
        return store

    def test_gc_drops_superseded_records(self, tmp_path):
        store = self._seed_store(tmp_path)
        report = store.gc()
        assert report == {"runA": {"kept": 3, "dropped": 1}}
        # Resolution is unchanged: later-lines-win picked the same
        # final record per seed before and after compaction.
        records = RunStore(tmp_path).load_records("runA")
        assert sorted(records) == [1, 2, 5]
        assert records[1].ok and records[1].attempts == 2
        # The dead line is physically gone.
        lines = sum(
            len(p.read_bytes().splitlines())
            for p in store.run_dir("runA").glob("shard-*.jsonl")
        )
        assert lines == 3

    def test_gc_dry_run_counts_without_rewriting(self, tmp_path):
        store = self._seed_store(tmp_path)
        report = store.gc(dry_run=True)
        assert report == {"runA": {"kept": 3, "dropped": 1}}
        lines = sum(
            len(p.read_bytes().splitlines())
            for p in store.run_dir("runA").glob("shard-*.jsonl")
        )
        assert lines == 4  # nothing rewritten
        assert store.runs()["runA"]["records"] == 4

    def test_gc_updates_manifest_counts(self, tmp_path):
        store = self._seed_store(tmp_path)
        store.gc()
        assert store.runs()["runA"]["records"] == 3
        assert RunStore(tmp_path).runs()["runA"]["records"] == 3

    def test_gc_idempotent(self, tmp_path):
        store = self._seed_store(tmp_path)
        store.gc()
        assert store.gc() == {"runA": {"kept": 3, "dropped": 0}}

    def test_gc_single_run_scope(self, tmp_path):
        store = self._seed_store(tmp_path)
        store.register_run("runB", "chaos", "scenB")
        store.append("runB", StoredRecord(seed=3, ok=True, result=1))
        store.append(
            "runB", StoredRecord(seed=3, ok=True, result=2, attempts=2)
        )
        report = store.gc(run_digest="runB")
        assert report == {"runB": {"kept": 1, "dropped": 1}}
        # runA untouched: its superseded record still on disk.
        lines = sum(
            len(p.read_bytes().splitlines())
            for p in store.run_dir("runA").glob("shard-*.jsonl")
        )
        assert lines == 4

    def test_gc_append_after_compaction(self, tmp_path):
        store = self._seed_store(tmp_path)
        store.gc()
        store.append(
            "runA", StoredRecord(seed=2, ok=True, result={"v": 22}, attempts=2)
        )
        records = store.load_records("runA")
        assert records[2].result == {"v": 22}
        assert store.gc() == {"runA": {"kept": 3, "dropped": 1}}

    def test_gc_missing_run_dir(self, tmp_path):
        store = RunStore(tmp_path)
        store.register_run("ghost", "sweep", "x")
        assert store.gc() == {"ghost": {"kept": 0, "dropped": 0}}


class TestParseAge:
    def test_units(self):
        assert parse_age("45s") == 45.0
        assert parse_age("30m") == 1800.0
        assert parse_age("12h") == 12 * 3600.0
        assert parse_age("7d") == 7 * 86400.0
        assert parse_age("2w") == 2 * 604800.0

    def test_bare_number_is_seconds(self):
        assert parse_age("90") == 90.0
        assert parse_age("1.5") == 1.5

    def test_rejects_garbage(self):
        for bad in ("", "  ", "fast", "-3d", "3y"):
            with pytest.raises(ValueError):
                parse_age(bad)


class TestExpiry:
    def _seed_store(self, tmp_path):
        store = RunStore(tmp_path)
        for digest in ("old", "new"):
            store.register_run(digest, "sweep", f"scn-{digest}")
            store.append(digest, StoredRecord(seed=1, ok=True, result=digest))
            store.update_run(digest, 1)
        return store

    def _backdate(self, store, digest, seconds):
        stamp = time.time() - seconds
        for path in store.run_dir(digest).glob("shard-*.jsonl"):
            os.utime(path, (stamp, stamp))

    def test_expires_only_idle_runs(self, tmp_path):
        store = self._seed_store(tmp_path)
        self._backdate(store, "old", 3600.0)
        report = store.expire(older_than=600.0)
        assert report["old"]["expired"] and not report["new"]["expired"]
        assert report["old"]["records"] == 1
        reloaded = RunStore(tmp_path)
        assert "old" not in reloaded.runs()
        assert not store.run_dir("old").exists()
        assert reloaded.load_records("new")[1].result == "new"

    def test_dry_run_touches_nothing(self, tmp_path):
        store = self._seed_store(tmp_path)
        self._backdate(store, "old", 3600.0)
        report = store.expire(older_than=600.0, dry_run=True)
        assert report["old"]["expired"]
        reloaded = RunStore(tmp_path)
        assert set(reloaded.runs()) == {"old", "new"}
        assert reloaded.load_records("old")[1].result == "old"

    def test_manifest_only_ghost_runs_expire(self, tmp_path):
        store = RunStore(tmp_path)
        store.register_run("ghost", "sweep", "x")
        report = store.expire(older_than=0.0)
        assert report["ghost"] == {
            "age": None,
            "records": 0,
            "expired": True,
        }
        assert "ghost" not in RunStore(tmp_path).runs()

    def test_append_refreshes_age(self, tmp_path):
        store = self._seed_store(tmp_path)
        self._backdate(store, "old", 3600.0)
        store.append("old", StoredRecord(seed=2, ok=True, result="fresh"))
        report = store.expire(older_than=600.0)
        assert not report["old"]["expired"]

    def test_rejects_negative_threshold(self, tmp_path):
        with pytest.raises(ValueError):
            RunStore(tmp_path).expire(older_than=-1.0)
