"""Supervised execution: frames, backoff, fault injection, quarantine.

Worker functions live at module level so they pickle across process
boundaries.  The byte-identity contract under test: a sweep that
*survives* injected infra faults (kill / stall / corrupt) produces
results indistinguishable from the fault-free run, and an exhausted
retry budget degrades to a structured quarantine outcome — never a
traceback crash of the campaign.
"""

import json
import multiprocessing
import os
import signal
import time

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import (
    FrameCorruption,
    InfraChaosConfig,
    RetryPolicy,
    RngStreams,
    SupervisedPool,
    SupervisionLog,
    SweepRunner,
    backoff_delays,
    replicate_seed,
    run_sweep,
    sweep_results,
)
from repro.sim.supervise import (
    corrupt_bytes,
    drain_degradations,
    frame_bytes,
    note_degradation,
    recv_frame,
    send_frame,
)


def _seeded_draws(spec):
    seed, n = spec
    rng = RngStreams(seed).stream("mc")
    return [rng.random() for _ in range(n)]


def _suicidal(spec):
    """App-level worker suicide on every attempt: exhausts any budget."""
    os.kill(os.getpid(), signal.SIGKILL)


def _noting(spec):
    note_degradation({"kind": "test_note", "spec": spec})
    return spec


class TestFrames:
    def test_roundtrip(self):
        a, b = multiprocessing.Pipe()
        send_frame(a, {"x": [1, 2, 3]})
        assert recv_frame(b) == {"x": [1, 2, 3]}
        a.close()
        b.close()

    def test_corrupt_flag_is_detected(self):
        a, b = multiprocessing.Pipe()
        send_frame(a, ("done", 0, True, "payload"), corrupt=True)
        with pytest.raises(FrameCorruption):
            recv_frame(b)
        a.close()
        b.close()

    def test_truncated_frame_is_detected(self):
        a, b = multiprocessing.Pipe()
        a.send_bytes(b"\x01")
        with pytest.raises(FrameCorruption, match="truncated"):
            recv_frame(b)
        a.close()
        b.close()

    @given(st.binary(min_size=5, max_size=200))
    @settings(max_examples=50, deadline=None)
    def test_corrupt_bytes_always_breaks_the_checksum(self, payload):
        raw = frame_bytes(payload)
        a, b = multiprocessing.Pipe()
        try:
            a.send_bytes(corrupt_bytes(raw))
            with pytest.raises(FrameCorruption):
                recv_frame(b)
        finally:
            a.close()
            b.close()


class TestBackoff:
    @given(st.integers(min_value=0, max_value=2**64 - 1))
    @settings(max_examples=100, deadline=None)
    def test_schedule_is_a_pure_function_of_the_seed(self, seed):
        policy = RetryPolicy(retries=4)
        assert backoff_delays(seed, policy) == backoff_delays(seed, policy)

    @given(
        st.integers(min_value=0, max_value=2**64 - 1),
        st.integers(min_value=0, max_value=6),
    )
    @settings(max_examples=100, deadline=None)
    def test_schedule_length_and_bounds(self, seed, retries):
        policy = RetryPolicy(
            retries=retries, base_delay=0.05, cap_delay=1.0, jitter=0.5
        )
        delays = backoff_delays(seed, policy)
        assert len(delays) == retries
        for k, delay in enumerate(delays):
            base = min(policy.cap_delay, policy.base_delay * 2**k)
            assert base <= delay <= base * (1.0 + policy.jitter)

    def test_different_seeds_jitter_differently(self):
        policy = RetryPolicy(retries=3)
        schedules = {backoff_delays(s, policy) for s in range(16)}
        assert len(schedules) > 1

    def test_policy_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(retries=-1)
        with pytest.raises(ValueError):
            RetryPolicy(base_delay=1.0, cap_delay=0.5)
        with pytest.raises(ValueError):
            RetryPolicy(jitter=-0.1)


class TestInfraChaosConfig:
    def test_parse_defaults_worker_zero(self):
        chaos = InfraChaosConfig.parse("kill@1")
        assert chaos.kill_at == 1
        assert chaos.kill_worker == 0
        assert chaos.stall_at is None

    def test_parse_compound_spec(self):
        chaos = InfraChaosConfig.parse("kill@1,stall@3:1,corrupt@2:2")
        assert (chaos.kill_at, chaos.kill_worker) == (1, 0)
        assert (chaos.stall_at, chaos.stall_worker) == (3, 1)
        assert (chaos.corrupt_at, chaos.corrupt_worker) == (2, 2)

    def test_parse_rejects_garbage(self):
        with pytest.raises(ValueError, match="unknown infra fault"):
            InfraChaosConfig.parse("explode@1")
        with pytest.raises(ValueError, match="bad --infra-chaos"):
            InfraChaosConfig.parse("kill@one")
        with pytest.raises(ValueError, match="empty"):
            InfraChaosConfig.parse(" , ")

    def test_shard_action_keys_on_worker_and_step(self):
        chaos = InfraChaosConfig.parse("kill@3:1")
        assert chaos.action(worker=1, step=3) == "kill"
        assert chaos.action(worker=0, step=3) is None
        assert chaos.action(worker=1, step=2) is None

    def test_pool_action_keys_on_step_alone(self):
        chaos = InfraChaosConfig.parse("corrupt@2:1")
        assert chaos.step_action(2) == "corrupt"
        assert chaos.step_action(1) is None

    def test_dict_roundtrip_rejects_unknown_keys(self):
        chaos = InfraChaosConfig.parse("stall@4:2")
        assert InfraChaosConfig.from_dict(chaos.to_dict()) == chaos
        with pytest.raises(ValueError, match="unknown infra-chaos keys"):
            InfraChaosConfig.from_dict({"nuke_at": 3})


class TestDegradationChannel:
    def test_note_and_drain(self):
        drain_degradations()
        note_degradation({"kind": "a"})
        note_degradation({"kind": "b"})
        assert drain_degradations() == ({"kind": "a"}, {"kind": "b"})
        assert drain_degradations() == ()

    def test_inline_runner_ships_notes_on_outcomes(self):
        outcomes = run_sweep(_noting, [10, 11], workers=0)
        assert [o.infra for o in outcomes] == [
            ({"kind": "test_note", "spec": 10},),
            ({"kind": "test_note", "spec": 11},),
        ]


class TestSupervisedPoolIdentity:
    """Surviving an injected infra fault leaves results byte-identical."""

    SPECS = [(replicate_seed(42, i), 20) for i in range(6)]

    def _baseline(self):
        return json.dumps(
            sweep_results(run_sweep(_seeded_draws, self.SPECS, workers=0))
        )

    def _supervised(self, chaos=None, deadline=None):
        runner = SweepRunner(
            _seeded_draws,
            workers=2,
            deadline=deadline,
            retry_policy=RetryPolicy(retries=2, base_delay=0.01),
            infra_chaos=chaos,
        )
        outcomes = runner.run(self.SPECS)
        return json.dumps(sweep_results(outcomes)), runner.last_supervision

    def test_clean_run_matches_inline(self):
        payload, log = self._supervised()
        assert payload == self._baseline()
        assert log.faults == 0 and not log.degraded

    def test_killed_worker_is_respawned_byte_identically(self):
        payload, log = self._supervised(InfraChaosConfig.parse("kill@1"))
        assert payload == self._baseline()
        assert log.worker_deaths == 1
        assert log.retries == 1
        assert log.respawns >= 1
        assert not log.degraded

    def test_corrupt_reply_frame_is_retried_byte_identically(self):
        payload, log = self._supervised(InfraChaosConfig.parse("corrupt@2"))
        assert payload == self._baseline()
        assert log.corrupt_frames == 1
        assert not log.degraded

    def test_hung_worker_trips_the_watchdog_byte_identically(self):
        chaos = InfraChaosConfig(stall_at=0, stall_seconds=20.0)
        payload, log = self._supervised(chaos, deadline=0.8)
        assert payload == self._baseline()
        assert log.hangs == 1
        assert not log.degraded

    def test_exhausted_budget_quarantines_not_crashes(self):
        log = SupervisionLog()
        pool = SupervisedPool(
            _suicidal,
            workers=1,
            policy=RetryPolicy(retries=1, base_delay=0.01),
            log=log,
        )
        emitted = []
        pool.run(
            [(0, {"seed": 5})],
            lambda *landed: emitted.append(landed),
        )
        assert len(emitted) == 1
        index, ok, payload, _elapsed, infra = emitted[0]
        assert (index, ok) == (0, False)
        assert "quarantined" in payload
        assert "retry budget (1) exhausted" in payload
        assert infra[0]["kind"] == "quarantined_replicate"
        assert infra[0]["attempts"] == 2
        assert log.quarantined == [0]
        assert log.worker_deaths == 2

    def test_quarantine_surfaces_as_failed_outcome_in_sweep(self):
        runner = SweepRunner(
            _suicidal,
            workers=1,
            retry_policy=RetryPolicy(retries=0, base_delay=0.01),
        )
        outcomes = runner.run([{"seed": 9}])
        assert not outcomes[0].ok
        assert "infra fault" in outcomes[0].error
        assert runner.last_supervision.quarantined == [0]

    def test_emit_lands_outcomes_as_they_complete(self):
        seen = []
        pool = SupervisedPool(_seeded_draws, workers=2)
        pool.run(
            list(enumerate(self.SPECS)),
            lambda index, *rest: seen.append(index),
        )
        assert sorted(seen) == list(range(len(self.SPECS)))


class TestSupervisedPoolTiming:
    def test_stall_recovery_is_bounded_by_the_deadline(self):
        """The watchdog, not the 20s stall, bounds wall-clock."""
        chaos = InfraChaosConfig(stall_at=0, stall_seconds=20.0)
        runner = SweepRunner(
            _seeded_draws,
            workers=2,
            deadline=0.5,
            retry_policy=RetryPolicy(retries=2, base_delay=0.01),
            infra_chaos=chaos,
        )
        start = time.monotonic()
        runner.run([(replicate_seed(3, i), 10) for i in range(4)])
        assert time.monotonic() - start < 10.0
        assert runner.last_supervision.hangs == 1
