"""Tests for the parallel sweep runner.

Worker functions live at module level so they pickle across process
boundaries (required by the supervised worker pool).
"""

import json
import time

import pytest

from repro.sim import (
    RngStreams,
    SweepError,
    SweepRunner,
    replicate_seed,
    replicate_streams,
    run_sweep,
    sweep_results,
)


def _seeded_draws(spec):
    seed, n = spec
    rng = RngStreams(seed).stream("mc")
    return [rng.random() for _ in range(n)]


def _fail_on_odd(spec):
    if spec % 2:
        raise ValueError(f"boom {spec}")
    return spec * 10


def _sleepy(spec):
    time.sleep(0.01)
    return spec


class TestDeterminism:
    def test_identical_results_across_workers_and_chunking(self):
        """The acceptance property: byte-identical aggregate output for
        workers in {0, 1, 4} and any chunk size."""
        specs = [(replicate_seed(42, i), 20) for i in range(9)]
        payloads = set()
        for workers in (0, 1, 4):
            for chunk_size in (None, 1, 3, 16):
                outcomes = run_sweep(
                    _seeded_draws,
                    specs,
                    workers=workers,
                    chunk_size=chunk_size,
                )
                payloads.add(json.dumps(sweep_results(outcomes)))
        assert len(payloads) == 1

    def test_outcomes_ordered_by_index(self):
        specs = [(replicate_seed(1, i), 5) for i in range(7)]
        outcomes = run_sweep(_seeded_draws, specs, workers=2, chunk_size=2)
        assert [o.index for o in outcomes] == list(range(7))

    def test_replicate_seed_stable_and_distinct(self):
        seeds = [replicate_seed(7, i) for i in range(100)]
        assert seeds == [replicate_seed(7, i) for i in range(100)]
        assert len(set(seeds)) == 100
        assert replicate_seed(8, 0) != replicate_seed(7, 0)

    def test_replicate_streams_independent_of_sweep_shape(self):
        # The streams a replicate sees depend only on (master, index).
        a = replicate_streams(3, 5).stream("deploy").random()
        b = replicate_streams(3, 5).stream("deploy").random()
        assert a == b


class TestFailureCapture:
    def test_crashed_replicate_does_not_kill_the_sweep(self):
        outcomes = run_sweep(_fail_on_odd, [0, 1, 2, 3], workers=2)
        assert [o.ok for o in outcomes] == [True, False, True, False]
        assert outcomes[2].result == 20
        assert "boom 1" in outcomes[1].error
        assert "ValueError" in outcomes[1].error

    def test_in_process_fallback_captures_too(self):
        outcomes = run_sweep(_fail_on_odd, [1], workers=0)
        assert not outcomes[0].ok
        assert "boom 1" in outcomes[0].error

    def test_sweep_results_raises_loudly_on_failures(self):
        outcomes = run_sweep(_fail_on_odd, [0, 1, 3], workers=0)
        with pytest.raises(SweepError, match="2/3 replicates failed"):
            sweep_results(outcomes)

    def test_timing_recorded_per_replicate(self):
        outcomes = run_sweep(_sleepy, [1, 2], workers=0)
        assert all(o.elapsed >= 0.01 for o in outcomes)


class TestRunnerConfig:
    def test_empty_specs(self):
        assert run_sweep(_seeded_draws, []) == []

    def test_negative_workers_rejected(self):
        with pytest.raises(ValueError):
            SweepRunner(_seeded_draws, workers=-1)

    def test_zero_chunk_size_rejected(self):
        with pytest.raises(ValueError):
            SweepRunner(_seeded_draws, chunk_size=0)

    def test_workers_capped_by_spec_count(self):
        runner = SweepRunner(_seeded_draws, workers=64)
        assert runner.resolve_workers(3) == 3
        assert runner.resolve_workers(0) == 0

    def test_default_workers_use_cpu_count(self):
        import os

        runner = SweepRunner(_seeded_draws)
        cpu = os.cpu_count() or 1
        expected = cpu if cpu > 1 else 0
        assert runner.resolve_workers(10_000) == expected

    def test_default_workers_single_cpu_runs_in_process(self, monkeypatch):
        # A 1-worker pool is pure IPC overhead; the default on a 1-CPU
        # host must be in-process execution, not a vacuous pool.
        import os

        monkeypatch.setattr(os, "cpu_count", lambda: 1)
        assert SweepRunner(_seeded_draws).resolve_workers(8) == 0
        monkeypatch.setattr(os, "cpu_count", lambda: 8)
        assert SweepRunner(_seeded_draws).resolve_workers(16) == 8
        # An explicit workers=1 still forces a real pool.
        assert SweepRunner(_seeded_draws, workers=1).resolve_workers(8) == 1
