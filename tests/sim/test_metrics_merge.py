"""Edge cases of ``Summary.merge`` (the sweep-aggregation combiner)."""

import math

import pytest

from repro.sim import Summary


def _filled(values):
    summary = Summary()
    for value in values:
        summary.add(value)
    return summary


class TestSummaryMergeEdgeCases:
    def test_empty_merge_empty(self):
        merged = Summary().merge(Summary())
        assert merged.count == 0
        assert merged.mean == 0.0
        assert merged.variance == 0.0
        assert merged.as_dict()["min"] == 0.0
        assert merged.as_dict()["max"] == 0.0

    def test_empty_merge_nonempty_adopts_other(self):
        other = _filled([2.0, 4.0, 6.0])
        merged = Summary().merge(other)
        assert merged.count == 3
        assert merged.mean == pytest.approx(4.0)
        assert merged.min == 2.0
        assert merged.max == 6.0
        assert merged.variance == pytest.approx(other.variance)

    def test_nonempty_merge_empty_is_identity(self):
        summary = _filled([1.0, 3.0])
        before = (summary.count, summary.mean, summary.variance)
        summary.merge(Summary())
        assert (summary.count, summary.mean, summary.variance) == before

    def test_single_sample_merge_single_sample(self):
        # Two one-sample streams: variance must come out as the
        # two-sample population variance, not zero.
        merged = _filled([2.0]).merge(_filled([4.0]))
        assert merged.count == 2
        assert merged.mean == pytest.approx(3.0)
        assert merged.variance == pytest.approx(1.0)
        assert merged.stddev == pytest.approx(1.0)
        assert (merged.min, merged.max) == (2.0, 4.0)

    def test_single_sample_variance_is_zero(self):
        summary = _filled([7.5])
        assert summary.variance == 0.0
        assert summary.stddev == 0.0

    def test_merge_matches_streaming_everything(self):
        left = [1.0, 5.0, -2.0]
        right = [10.0, 0.5]
        merged = _filled(left).merge(_filled(right))
        streamed = _filled(left + right)
        assert merged.count == streamed.count
        assert merged.mean == pytest.approx(streamed.mean)
        assert merged.variance == pytest.approx(streamed.variance)
        assert merged.min == streamed.min
        assert merged.max == streamed.max

    def test_merge_returns_self_for_chaining(self):
        summary = _filled([1.0])
        assert summary.merge(_filled([2.0])) is summary

    def test_merge_preserves_infinite_sentinels_when_both_empty(self):
        merged = Summary().merge(Summary())
        # Internal sentinels stay consistent for later ``add`` calls.
        merged.add(3.0)
        assert (merged.min, merged.max) == (3.0, 3.0)
        assert merged.mean == pytest.approx(3.0)

    def test_empty_merge_then_more_samples(self):
        summary = Summary().merge(_filled([4.0]))
        summary.add(6.0)
        assert summary.count == 2
        assert summary.mean == pytest.approx(5.0)
        assert summary.variance == pytest.approx(1.0)
        assert not math.isinf(summary.min)
