"""Sharded execution: the byte-identity differential suite.

The contract under test (DESIGN.md § 9): a run at ``shards=N`` is
byte-identical to ``shards=1`` — same ``state_digest``, same trace
multiset, same scenario/chaos verdicts — for every N and for both the
inline and process-pool executors.  Identity is *mode-relative*: the
lane-keyed sharded trajectory is internally consistent across shard
counts but deliberately distinct from the legacy single-simulator
path, which these tests never compare against.
"""

import json
from collections import Counter

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.config import GS3Config
from repro.geometry import HexLattice, Vec2
from repro.net.faults import ChannelFaultConfig
from repro.sim import RngStreams, state_digest
from repro.sim.shard import (
    ShardedSimulation,
    ShardError,
    plan_partition,
    shard_seed,
)

CONFIG = GS3Config(ideal_radius=100.0, radius_tolerance=25.0)
DEPLOYMENT = {"kind": "uniform", "field_radius": 170.0, "n_nodes": 80}


def _trace_multiset(sim) -> Counter:
    return Counter(
        (r.time, r.category, r.node, r.details) for r in sim.tracer.records
    )


def _fingerprint(sim):
    """Everything the identity contract covers, as one comparable value.

    ``executed_events`` is deliberately absent: it counts *physical*
    events per shard, and a driver op replicated into mirror shards
    adds a few extra executions at higher shard counts without touching
    protocol state.  The contract is over protocol-visible state (the
    digest), the trace multiset, and verdicts.
    """
    return (
        state_digest(sim.snapshot()),
        sim.now,
        _trace_multiset(sim),
    )


def _drive(sim, perturb=True):
    """A fixed campaign: settle, batter the structure, settle again."""
    sim.start()
    sim.run_for(160.0)
    if perturb:
        snapshot = sim.snapshot()
        victim = next(
            v.node_id for v in snapshot.heads.values() if not v.is_big
        )
        sim.kill_node(victim)
        sim.run_for(80.0)
        sim.kill_region(Vec2(60.0, 40.0), 45.0)
        sim.run_for(80.0)
        joined = sim.add_node(Vec2(-40.0, 55.0))
        sim.corrupt_node(joined)
        sim.jam_region(Vec2(0.0, 0.0), 50.0, 40.0)
        sim.run_for(120.0)
    return _fingerprint(sim)


def _run(shards, executor="inline", channel=None, seed=7, perturb=True):
    sim = ShardedSimulation(
        DEPLOYMENT,
        CONFIG,
        seed=seed,
        shards=shards,
        executor=executor,
        channel=channel,
    )
    try:
        return _drive(sim, perturb=perturb)
    finally:
        sim.close()


class TestByteIdentity:
    def test_shard_counts_agree_inline(self):
        baseline = _run(1)
        assert _run(2) == baseline
        assert _run(4) == baseline

    def test_process_executor_agrees_with_inline(self):
        assert _run(3, executor="process") == _run(3, executor="inline")

    def test_identity_under_channel_faults(self):
        channel = ChannelFaultConfig.from_dict(
            {"latency_jitter": 0.3, "duplicate_prob": 0.02}
        )
        baseline = _run(1, channel=channel)
        assert _run(4, channel=channel) == baseline

    def test_identity_without_perturbations(self):
        baseline = _run(1, perturb=False)
        assert _run(2, perturb=False) == baseline

    def test_different_seeds_diverge(self):
        # Sanity: the fingerprint is sensitive enough to catch drift.
        assert _run(1, seed=7) != _run(1, seed=8)


class TestByteIdentityRandomized:
    @given(
        seed=st.integers(min_value=0, max_value=2**32 - 1),
        n_nodes=st.integers(min_value=40, max_value=90),
        shards=st.sampled_from([2, 3, 4]),
        churn=st.lists(
            st.sampled_from(["kill", "join", "corrupt", "jam"]),
            min_size=0,
            max_size=3,
        ),
    )
    @settings(
        max_examples=6,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_random_topology_and_churn(self, seed, n_nodes, shards, churn):
        """Random deployments and churn sequences: N shards == 1 shard."""
        spec = {
            "kind": "uniform",
            "field_radius": 160.0,
            "n_nodes": n_nodes,
        }

        def campaign(n):
            sim = ShardedSimulation(
                spec, CONFIG, seed=seed, shards=n, executor="inline"
            )
            try:
                sim.start()
                sim.run_for(150.0)
                rng = RngStreams(seed ^ 0x5EED).stream("test.churn")
                for action in churn:
                    if action == "kill":
                        alive = [
                            n.node_id
                            for n in sim.network.alive_nodes()
                            if not n.is_big
                        ]
                        if alive:
                            sim.kill_node(rng.choice(alive))
                    elif action == "join":
                        sim.add_node(
                            Vec2(
                                rng.uniform(-100.0, 100.0),
                                rng.uniform(-100.0, 100.0),
                            )
                        )
                    elif action == "corrupt":
                        alive = [
                            n.node_id
                            for n in sim.network.alive_nodes()
                            if not n.is_big
                        ]
                        if alive:
                            sim.corrupt_node(rng.choice(alive))
                    elif action == "jam":
                        sim.jam_region(
                            Vec2(rng.uniform(-80, 80), rng.uniform(-80, 80)),
                            40.0,
                            30.0,
                        )
                    sim.run_for(40.0)
                return _fingerprint(sim)
            finally:
                sim.close()

        assert campaign(shards) == campaign(1)


class TestScenarioAndChaosWiring:
    def test_scenario_replicate_identical_across_shards(self):
        from repro.scenario import run_scenario_replicate

        data = {
            "seed": 7,
            "config": {"ideal_radius": 100.0, "radius_tolerance": 25.0},
            "deployment": DEPLOYMENT,
            "settle_window": 90.0,
            "perturbations": [
                {"kind": "kill_head", "at": 200.0},
                {"kind": "join", "at": 400.0, "position": [30.0, 20.0]},
            ],
        }
        payloads = {}
        for shards in (1, 4):
            d = dict(data)
            d["shards"] = shards
            payloads[shards] = json.dumps(
                run_scenario_replicate({"data": d, "seed": 7}),
                sort_keys=True,
            )
        assert payloads[1] == payloads[4]

    def test_chaos_verdict_identical_and_heals(self):
        from repro.perturb.chaos import run_chaos_replicate

        data = {
            "config": {"ideal_radius": 100.0, "radius_tolerance": 25.0},
            "deployment": DEPLOYMENT,
            "chaos": {
                "duration": 150.0,
                "kill_rate": 0.004,
                "join_rate": 0.002,
                "jam_rate": 0.002,
                "jam_radius": 40.0,
                "jam_duration": 40.0,
                "settle_window": 90.0,
                "heal_budget": 20000.0,
            },
        }
        verdicts = {}
        for shards in (1, 4):
            d = dict(data)
            d["shards"] = shards
            verdicts[shards] = run_chaos_replicate({"data": d, "seed": 11})
        assert verdicts[1] == verdicts[4]
        assert verdicts[1]["healed"]

    def test_shard_executor_never_in_scenario_digest(self):
        from repro.scenario import Scenario

        base = {
            "seed": 1,
            "config": {"ideal_radius": 100.0},
            "deployment": DEPLOYMENT,
            "perturbations": [],
            "shards": 2,
        }
        inline = Scenario.from_dict(dict(base, shard_executor="inline"))
        process = Scenario.from_dict(dict(base, shard_executor="process"))
        assert inline.canonical_digest() == process.canonical_digest()
        # ... but the shard count itself IS part of the identity.
        unsharded = Scenario.from_dict(
            {k: v for k, v in base.items() if k != "shards"}
        )
        assert unsharded.canonical_digest() != inline.canonical_digest()

    def test_mobile_scenario_rejected(self):
        from repro.scenario import Scenario

        with pytest.raises(ValueError, match="mobile"):
            Scenario.from_dict(
                {
                    "seed": 1,
                    "deployment": DEPLOYMENT,
                    "perturbations": [],
                    "mobile": True,
                    "shards": 2,
                }
            )


class TestUnsupportedOperations:
    def _sim(self, shards=2):
        return ShardedSimulation(DEPLOYMENT, CONFIG, seed=7, shards=shards)

    def test_custom_mutator_rejected(self):
        sim = self._sim()
        try:
            sim.start()
            sim.run_for(120.0)
            victim = next(
                n.node_id for n in sim.network.alive_nodes() if not n.is_big
            )
            with pytest.raises(ShardError, match="mutator"):
                sim.corrupt_node(victim, mutator=lambda node, rng: None)
        finally:
            sim.close()

    def test_cross_region_move_rejected(self):
        sim = self._sim(shards=4)
        try:
            sim.start()
            sim.run_for(120.0)
            # A move across the whole field necessarily crosses a
            # stripe boundary at 4 shards.
            mover = next(
                n
                for n in sim.network.alive_nodes()
                if not n.is_big and n.position.x < -80.0
            )
            with pytest.raises(ShardError, match="cross-region"):
                sim.move_node(mover.node_id, Vec2(150.0, 0.0))
        finally:
            sim.close()

    def test_energy_model_rejected(self):
        sim = self._sim()
        try:
            with pytest.raises(ShardError):
                sim.attach_energy()
        finally:
            sim.close()


class TestPlanPartition:
    def _lattice(self):
        return HexLattice(Vec2(0.0, 0.0), CONFIG.lattice_spacing)

    def test_boundaries_sorted_and_cover(self):
        positions = [
            Vec2(x, y)
            for x in (-150.0, -50.0, 0.0, 50.0, 150.0)
            for y in (-50.0, 0.0, 50.0)
        ]
        part = plan_partition(self._lattice(), positions, 4, 120.0)
        assert part.shards == 4
        assert len(part.boundaries) == 3
        assert list(part.boundaries) == sorted(part.boundaries)
        qs = [self._lattice().fractional_axial(p)[0] for p in positions]
        owners = [part.owner_of(q) for q in qs]
        assert set(owners) <= set(range(4))
        # Ownership is monotone in q.
        paired = sorted(zip(qs, owners))
        assert [o for _, o in paired] == sorted(o for _, o in paired)

    def test_single_shard_owns_everything(self):
        positions = [Vec2(float(i * 10), 0.0) for i in range(20)]
        part = plan_partition(self._lattice(), positions, 1, 120.0)
        assert part.boundaries == ()
        assert all(
            part.owner_of(
                self._lattice().fractional_axial(p)[0]
            ) == 0
            for p in positions
        )

    def test_stripes_near_includes_neighbors_within_margin(self):
        positions = [Vec2(float(i * 20 - 200), 0.0) for i in range(21)]
        part = plan_partition(self._lattice(), positions, 2, 120.0)
        (boundary,) = part.boundaries
        # A point just left of the boundary is owned by 0 but mirrored
        # into 1; a point far away is not.
        near = part.stripes_near(boundary - part.margin / 2.0)
        assert near[0] == 0 and 1 in near
        far = part.stripes_near(boundary - 10.0 * part.margin)
        assert far == [0]

    def test_shard_seed_distinct_per_region(self):
        seeds = {shard_seed(7, k) for k in range(8)}
        assert len(seeds) == 8
        assert shard_seed(7, 0) != shard_seed(8, 0)

    def test_invalid_shard_count_rejected(self):
        with pytest.raises((ValueError, ShardError)):
            ShardedSimulation(DEPLOYMENT, CONFIG, seed=1, shards=0)
