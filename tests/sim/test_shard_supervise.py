"""Supervised shard executor: kill/stall/corrupt a worker, stay identical.

The contract (DESIGN.md § 10): shard workers are deterministic
functions of their spec and command journal, so a SIGKILLed or hung
worker is respawned at the epoch barrier, replayed, and the run's
fingerprint is **byte-identical** to an undisturbed inline run.  Past
the retry budget the campaign degrades ``process -> inline`` (recorded
as a structured degradation) instead of crashing — unless degradation
is disabled, in which case a :class:`ShardError` names the dead shard.
"""

from collections import Counter

import pytest

from repro.core.config import GS3Config
from repro.geometry import Vec2
from repro.sim import ShardError, state_digest
from repro.sim.shard import ShardedSimulation
from repro.sim.supervise import (
    InfraChaosConfig,
    RetryPolicy,
    ShardSupervision,
    drain_degradations,
)

CONFIG = GS3Config(ideal_radius=100.0, radius_tolerance=25.0)
DEPLOYMENT = {"kind": "uniform", "field_radius": 170.0, "n_nodes": 80}
SHARDS = 3
SEED = 11


def _fingerprint(sim):
    return (
        state_digest(sim.snapshot()),
        sim.now,
        Counter(
            (r.time, r.category, r.node, r.details)
            for r in sim.tracer.records
        ),
    )


def _drive(sim):
    """A short campaign: settle, kill a head, settle again."""
    sim.start()
    sim.run_for(120.0)
    snapshot = sim.snapshot()
    victim = next(
        v.node_id for v in snapshot.heads.values() if not v.is_big
    )
    sim.kill_node(victim)
    sim.run_for(60.0)
    return _fingerprint(sim)


def _run(executor="inline", supervise=None):
    sim = ShardedSimulation(
        DEPLOYMENT,
        CONFIG,
        seed=SEED,
        shards=SHARDS,
        executor=executor,
        supervise=supervise,
    )
    try:
        return _drive(sim), sim.supervision_log
    finally:
        sim.close()


@pytest.fixture(scope="module")
def baseline():
    fingerprint, _ = _run("inline")
    return fingerprint


class TestSupervisedRecovery:
    def test_killed_shard_worker_is_respawned_byte_identically(
        self, baseline
    ):
        supervise = ShardSupervision(
            policy=RetryPolicy(retries=2, base_delay=0.01),
            infra_chaos=InfraChaosConfig.parse("kill@2:1"),
        )
        fingerprint, log = _run("process", supervise)
        assert fingerprint == baseline
        assert log.worker_deaths == 1
        assert log.respawns == 1
        assert log.retries == 1
        assert not log.degraded

    def test_hung_shard_worker_trips_watchdog_byte_identically(
        self, baseline
    ):
        supervise = ShardSupervision(
            deadline=1.0,
            policy=RetryPolicy(retries=2, base_delay=0.01),
            infra_chaos=InfraChaosConfig(
                stall_at=1, stall_worker=0, stall_seconds=30.0
            ),
        )
        fingerprint, log = _run("process", supervise)
        assert fingerprint == baseline
        assert log.hangs == 1
        assert log.respawns == 1
        assert not log.degraded

    def test_corrupt_reply_frame_is_retried_byte_identically(
        self, baseline
    ):
        supervise = ShardSupervision(
            policy=RetryPolicy(retries=2, base_delay=0.01),
            infra_chaos=InfraChaosConfig.parse("corrupt@3:2"),
        )
        fingerprint, log = _run("process", supervise)
        assert fingerprint == baseline
        assert log.corrupt_frames == 1
        assert not log.degraded


class TestGracefulDegradation:
    def test_exhausted_budget_falls_back_inline_byte_identically(
        self, baseline
    ):
        drain_degradations()
        supervise = ShardSupervision(
            policy=RetryPolicy(retries=0),
            infra_chaos=InfraChaosConfig.parse("kill@2:1"),
            fallback_inline=True,
        )
        fingerprint, log = _run("process", supervise)
        assert fingerprint == baseline
        assert log.fallbacks == [1]
        notes = drain_degradations()
        assert any(
            n["kind"] == "shard_inline_fallback" and n["shard"] == 1
            for n in notes
        )

    def test_fallback_disabled_raises_a_shard_error_naming_the_shard(self):
        supervise = ShardSupervision(
            policy=RetryPolicy(retries=0),
            infra_chaos=InfraChaosConfig.parse("kill@2:1"),
            fallback_inline=False,
        )
        sim = ShardedSimulation(
            DEPLOYMENT,
            CONFIG,
            seed=SEED,
            shards=SHARDS,
            executor="process",
            supervise=supervise,
        )
        try:
            with pytest.raises(ShardError, match="shard 1"):
                _drive(sim)
        finally:
            sim.close()


class TestSuperviseDictPlumbing:
    def test_scenario_shaped_dict_is_accepted(self, baseline):
        """The CLI folds --infra-chaos flags into a supervise dict."""
        supervise = {
            "deadline": None,
            "retries": 1,
            "infra_chaos": InfraChaosConfig.parse("kill@1:0").to_dict(),
            "fallback_inline": True,
        }
        fingerprint, log = _run("process", supervise)
        assert fingerprint == baseline
        assert log.worker_deaths == 1

    def test_unknown_supervise_keys_are_rejected(self):
        with pytest.raises(ValueError, match="unknown supervise keys"):
            ShardedSimulation(
                DEPLOYMENT,
                CONFIG,
                seed=SEED,
                shards=SHARDS,
                supervise={"dead_line": 3.0},
            )
