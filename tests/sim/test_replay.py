"""Tests for deterministic replay, state digests, and bisection."""

import json
import math
import subprocess
import sys
from pathlib import Path

import pytest

from repro.scenario import Scenario
from repro.sim import SweepRunner
from repro.sim.replay import (
    PREDICATES,
    bisect_onset,
    head_tree_partitioned,
    replay_to,
    state_digest,
)

#: A small, fast scenario: configures in a few hundred ticks, one head
#: kill, completes around t=600 in well under a second.
TINY = {
    "seed": 3,
    "config": {"ideal_radius": 100.0, "radius_tolerance": 25.0},
    "deployment": {"kind": "uniform", "field_radius": 160.0, "n_nodes": 80},
    "perturbations": [{"kind": "kill_head", "at": 400.0}],
    "settle_window": 60.0,
}

#: The EXPERIMENTS.md jam-wedge reproduction: a jam window covering the
#: big node's region partitions the head tree one failure timeout after
#: the jam hits.  Pre-0.2 the structure stayed wedged (rootless, parent
#: cycles) forever; with root liveness the tree re-roots within one
#: further failure timeout and the big node reclaims the root after the
#: jam lifts (completes healed around t=1000).
WEDGE = {
    "seed": 0,
    "config": {"ideal_radius": 100.0, "radius_tolerance": 25.0},
    "deployment": {"kind": "uniform", "field_radius": 200.0, "n_nodes": 150},
    "perturbations": [
        {
            "kind": "jam_region",
            "at": 400.0,
            "center": [0.0, 0.0],
            "radius": 150.0,
            "duration": 400.0,
        }
    ],
    "settle_window": 100.0,
}


def _digest_at(data, seed, t):
    scenario = Scenario.from_dict(data)
    return state_digest(replay_to(scenario, seed, t).snapshot)


def _digest_worker(spec):
    """Picklable pool worker: digest of a replayed state."""
    return _digest_at(spec["data"], spec["seed"], spec["at"])


class TestReplayTo:
    def test_stops_exactly_at_horizon(self):
        state = replay_to(Scenario.from_dict(TINY), 3, 450.0)
        assert state.time == 450.0
        assert not state.completed
        assert state.result is None
        assert state.simulation.now == 450.0

    def test_completes_before_far_horizon(self):
        state = replay_to(Scenario.from_dict(TINY), 3, 1e9)
        assert state.completed
        assert state.result is not None
        assert state.time < 1e9

    def test_seed_override(self):
        scenario = Scenario.from_dict(TINY)
        state = replay_to(scenario, 12345, 100.0)
        assert state.seed == 12345
        assert state.scenario.seed == 12345

    def test_rejects_negative_time(self):
        with pytest.raises(ValueError):
            replay_to(Scenario.from_dict(TINY), 3, -1.0)

    def test_state_beyond_completion_is_final_state(self):
        # Any horizon past completion yields the same final state.
        assert _digest_at(TINY, 3, 1e8) == _digest_at(TINY, 3, 1e9)


class TestStateDigest:
    def test_deterministic_in_process(self):
        assert _digest_at(TINY, 3, 450.0) == _digest_at(TINY, 3, 450.0)

    def test_sensitive_to_seed_and_time(self):
        base = _digest_at(TINY, 3, 450.0)
        assert base != _digest_at(TINY, 4, 450.0)
        assert base != _digest_at(TINY, 3, 200.0)

    def test_identical_in_fork_pool_worker(self):
        spec = {"data": TINY, "seed": 3, "at": 450.0}
        pooled = SweepRunner(_digest_worker, workers=1).run([spec])
        assert pooled[0].ok, pooled[0].error
        assert pooled[0].result == _digest_at(TINY, 3, 450.0)

    @pytest.mark.slow
    def test_identical_across_separate_processes(self, tmp_path):
        # Two cold python processes — separate interpreter, separate
        # hash randomisation — must agree on the digest byte-for-byte.
        script = (
            "import json, sys; "
            "from repro.scenario import Scenario; "
            "from repro.sim.replay import replay_to, state_digest; "
            "data = json.loads(sys.argv[1]); "
            "print(state_digest("
            "replay_to(Scenario.from_dict(data), 3, 450.0).snapshot))"
        )
        src = str(Path(__file__).resolve().parents[2] / "src")
        digests = []
        for _ in range(2):
            proc = subprocess.run(
                [sys.executable, "-c", script, json.dumps(TINY)],
                capture_output=True,
                text=True,
                env={"PYTHONPATH": src, "PYTHONHASHSEED": "random"},
                check=True,
            )
            digests.append(proc.stdout.strip())
        assert digests[0] == digests[1] == _digest_at(TINY, 3, 450.0)


class TestPredicates:
    def test_partition_false_on_healthy_structure(self):
        state = replay_to(Scenario.from_dict(TINY), 3, 350.0)
        assert not head_tree_partitioned(state)

    def test_partition_false_with_no_heads(self):
        # At t=0 nothing has booted yet: no heads, trivially false.
        state = replay_to(Scenario.from_dict(TINY), 3, 0.0)
        assert not state.snapshot.heads
        assert not head_tree_partitioned(state)

    @pytest.mark.slow
    def test_wedge_heals_with_root_liveness(self):
        """The jam wedge self-heals: transient partition, clean finish.

        Pre-0.2 this scenario ended wedged — rootless head tree with
        parent cycles, quiescent forever.  Root liveness makes the
        partition transient: heads notice their root view went stale,
        ROOT_SEEK elects a stand-in root during the outage, and the big
        node reclaims the root (epoch-demoting the stand-in) once the
        jam lifts.
        """
        scenario = Scenario.from_dict(WEDGE)
        final = replay_to(scenario, 0, 1e9)
        assert final.completed
        assert not head_tree_partitioned(final)
        assert not PREDICATES["root_stale"](final)
        violations = final.result.final_violations
        assert not any("root" in v or "cycle" in v for v in violations)
        # The big node is the root again at the end.
        snapshot = final.snapshot
        assert snapshot.roots == [snapshot.big_id]
        # The healing went through the new machinery: the stale heads
        # sought a root, one regenerated, and the regenerated root
        # handed back to the big node after the jam.
        tracer = final.simulation.tracer
        assert tracer.count("root.seek") >= 1
        assert tracer.count("root.regenerate") >= 1
        assert tracer.count("root.handback") >= 1
        # Before the jam the configured structure is intact; during the
        # outage the partition is real (the predicate still detects it).
        assert not head_tree_partitioned(replay_to(scenario, 0, 390.0))
        assert head_tree_partitioned(replay_to(scenario, 0, 450.0))


class TestBisectOnset:
    def test_rejects_bad_window_and_tol(self):
        scenario = Scenario.from_dict(TINY)
        with pytest.raises(ValueError):
            bisect_onset(scenario, 3, lambda s: True, t_max=5.0, t_min=5.0)
        with pytest.raises(ValueError):
            bisect_onset(scenario, 3, lambda s: True, t_max=10.0, tol=0.0)

    def test_never_true_returns_no_onset(self):
        result = bisect_onset(
            Scenario.from_dict(TINY),
            3,
            lambda state: False,
            t_max=100.0,
        )
        assert result.onset is None
        assert result.bisect_steps == 0
        assert result.replays == 1
        assert result.state is None

    def test_simple_time_threshold(self):
        # A pure-time predicate lets us check the search arithmetic
        # exactly: first true instant within tol of the threshold.
        result = bisect_onset(
            Scenario.from_dict(TINY),
            3,
            lambda state: state.time >= 300.0,
            t_max=512.0,
            tol=1.0,
        )
        assert result.onset is not None
        assert 300.0 <= result.onset < 301.0
        assert result.onset - result.lo <= 1.0
        assert result.bisect_steps <= math.ceil(math.log2(512.0 / 1.0))

    @pytest.mark.slow
    def test_wedge_onset_regression(self):
        """Pin the jam-wedge onset: one failure timeout after jam start.

        The WEDGE scenario jams the big node's region at t=400; heads
        inside the disk are declared failed one failure_timeout
        (3.5 * 10 = 35 ticks) later, and the head tree partitions.  The
        bisection must find that instant within the step bound.

        With root liveness the partition is *transient* (healed by
        ~t=466), so the search window must end inside the outage —
        bisection assumes monotonicity, and probing t=800 would see the
        already-healed structure.
        """
        scenario = Scenario.from_dict(WEDGE)
        t_max = 450.0  # inside the partition window [~435, ~465]
        tol = 1.0
        result = bisect_onset(
            scenario,
            0,
            PREDICATES["partition"],
            t_max=t_max,
            tol=tol,
        )
        assert result.onset is not None
        # Regression pin: onset in the failure-timeout window after the
        # jam hits at t=400 (measured: ~435.06).
        assert 430.0 <= result.onset <= 440.0
        assert result.onset - result.lo <= tol
        assert result.bisect_steps <= math.ceil(math.log2(t_max / tol))
        # The returned state is the earliest true probe and usable for
        # forensics without another replay.
        assert result.state is not None
        assert head_tree_partitioned(result.state)
        assert not head_tree_partitioned(
            replay_to(scenario, 0, result.lo)
        )
        # Recovery pin: the partition clears within roughly one
        # failure timeout of the onset — long before the jam lifts at
        # t=800 (measured: healed by ~466).
        assert not head_tree_partitioned(replay_to(scenario, 0, 470.0))
        assert not head_tree_partitioned(replay_to(scenario, 0, 800.0))
