"""Tests for the discrete-event simulator and periodic timers."""

import pytest

from repro.sim import PeriodicTimer, RngStreams, SimulationError, Simulator


class TestScheduling:
    def test_starts_at_zero(self):
        assert Simulator().now == 0.0

    def test_events_run_in_time_order(self):
        sim = Simulator()
        order = []
        sim.schedule(3.0, lambda: order.append("c"))
        sim.schedule(1.0, lambda: order.append("a"))
        sim.schedule(2.0, lambda: order.append("b"))
        sim.run()
        assert order == ["a", "b", "c"]

    def test_fifo_among_equal_times(self):
        sim = Simulator()
        order = []
        for tag in "abc":
            sim.schedule(1.0, lambda t=tag: order.append(t))
        sim.run()
        assert order == ["a", "b", "c"]

    def test_clock_advances_to_event_time(self):
        sim = Simulator()
        seen = []
        sim.schedule(5.0, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [5.0]
        assert sim.now == 5.0

    def test_negative_delay_rejected(self):
        with pytest.raises(SimulationError):
            Simulator().schedule(-1.0, lambda: None)

    def test_schedule_at_past_rejected(self):
        sim = Simulator()
        sim.schedule(10.0, lambda: None)
        sim.run()
        with pytest.raises(SimulationError):
            sim.schedule_at(5.0, lambda: None)

    def test_call_soon_runs_at_current_time(self):
        sim = Simulator()
        times = []
        sim.schedule(2.0, lambda: sim.call_soon(lambda: times.append(sim.now)))
        sim.run()
        assert times == [2.0]

    def test_events_scheduled_during_run(self):
        sim = Simulator()
        order = []

        def first():
            order.append("first")
            sim.schedule(1.0, lambda: order.append("second"))

        sim.schedule(1.0, first)
        sim.run()
        assert order == ["first", "second"]
        assert sim.now == 2.0


class TestCancellation:
    def test_cancelled_event_not_run(self):
        sim = Simulator()
        fired = []
        handle = sim.schedule(1.0, lambda: fired.append(1))
        handle.cancel()
        sim.run()
        assert fired == []

    def test_cancel_is_idempotent(self):
        sim = Simulator()
        handle = sim.schedule(1.0, lambda: None)
        handle.cancel()
        handle.cancel()
        assert not handle.active

    def test_handle_reports_time(self):
        sim = Simulator()
        handle = sim.schedule(4.5, lambda: None)
        assert handle.time == 4.5


class TestHandleLifecycle:
    def test_active_means_pending(self):
        sim = Simulator()
        handle = sim.schedule(1.0, lambda: None)
        assert handle.active
        sim.run()
        # Executed events are no longer pending, even though they were
        # never cancelled.
        assert not handle.active

    def test_cancel_after_execution_is_noop(self):
        sim = Simulator()
        handle = sim.schedule(1.0, lambda: None)
        sim.run()
        handle.cancel()
        assert not handle.active
        assert sim.pending_events == 0

    def test_pending_events_counter(self):
        sim = Simulator()
        handles = [sim.schedule(float(i), lambda: None) for i in range(5)]
        assert sim.pending_events == 5
        handles[0].cancel()
        handles[0].cancel()  # idempotent: one decrement only
        assert sim.pending_events == 4
        sim.step()
        assert sim.pending_events == 3
        sim.run()
        assert sim.pending_events == 0

    def test_timer_active_consistent_with_handle(self):
        sim = Simulator()
        timer = PeriodicTimer(sim, 1.0, lambda: None)
        assert not timer.active
        timer.start()
        assert timer.active
        sim.run(until=3.5)
        assert timer.active  # rearmed after each firing
        timer.stop()
        assert not timer.active

    def test_timer_inactive_after_stopiteration(self):
        sim = Simulator()

        def tick():
            raise StopIteration

        timer = PeriodicTimer(sim, 1.0, tick).start()
        sim.run(until=5.0)
        assert not timer.active
        assert sim.pending_events == 0


class TestRunControl:
    def test_run_until_stops_clock(self):
        sim = Simulator()
        fired = []
        sim.schedule(10.0, lambda: fired.append(1))
        sim.run(until=5.0)
        assert fired == []
        assert sim.now == 5.0
        sim.run()
        assert fired == [1]

    def test_run_for(self):
        sim = Simulator()
        sim.schedule(3.0, lambda: None)
        sim.run_for(2.0)
        assert sim.now == 2.0
        sim.run_for(2.0)
        assert sim.now == 4.0

    def test_step_returns_false_when_empty(self):
        assert Simulator().step() is False

    def test_next_event_time(self):
        sim = Simulator()
        assert sim.next_event_time() is None
        sim.schedule(7.0, lambda: None)
        assert sim.next_event_time() == 7.0

    def test_executed_events_counter(self):
        sim = Simulator()
        for _ in range(5):
            sim.schedule(1.0, lambda: None)
        sim.run()
        assert sim.executed_events == 5

    def test_max_events_guard(self):
        sim = Simulator(max_events=10)

        def loop():
            sim.schedule(1.0, loop)

        sim.schedule(1.0, loop)
        with pytest.raises(SimulationError):
            sim.run()


class TestPeriodicTimer:
    def test_fires_repeatedly(self):
        sim = Simulator()
        times = []
        timer = PeriodicTimer(sim, 2.0, lambda: times.append(sim.now))
        timer.start()
        sim.run(until=7.0)
        assert times == [2.0, 4.0, 6.0]

    def test_initial_delay(self):
        sim = Simulator()
        times = []
        PeriodicTimer(sim, 5.0, lambda: times.append(sim.now)).start(
            initial_delay=1.0
        )
        sim.run(until=7.0)
        assert times == [1.0, 6.0]

    def test_stop(self):
        sim = Simulator()
        times = []
        timer = PeriodicTimer(sim, 1.0, lambda: times.append(sim.now))
        timer.start()
        sim.schedule(2.5, timer.stop)
        sim.run(until=10.0)
        assert times == [1.0, 2.0]
        assert not timer.active

    def test_callback_can_stop_via_stopiteration(self):
        sim = Simulator()
        count = []

        def tick():
            count.append(1)
            if len(count) == 3:
                raise StopIteration

        PeriodicTimer(sim, 1.0, tick).start()
        sim.run(until=10.0)
        assert len(count) == 3

    def test_zero_interval_rejected(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            PeriodicTimer(sim, 0.0, lambda: None).start()


class TestPeriodicTimerJitter:
    def test_jitter_spreads_firings(self):
        sim = Simulator()
        times = []
        rng = RngStreams(7).stream("timer.jitter")
        PeriodicTimer(
            sim, 10.0, lambda: times.append(sim.now), jitter=2.0, rng=rng
        ).start()
        sim.run(until=100.0)
        assert len(times) >= 5
        gaps = [b - a for a, b in zip(times, times[1:])]
        for gap in gaps:
            assert 8.0 <= gap <= 12.0
        # Jitter actually perturbs the period (not silently ignored).
        assert any(abs(gap - 10.0) > 1e-9 for gap in gaps)

    def test_jitter_deterministic_under_rng_streams(self):
        def run_once():
            sim = Simulator()
            times = []
            rng = RngStreams(3).stream("timer.jitter")
            PeriodicTimer(
                sim, 5.0, lambda: times.append(sim.now), jitter=1.0, rng=rng
            ).start()
            sim.run(until=60.0)
            return times

        assert run_once() == run_once()

    def test_nonzero_jitter_without_rng_rejected(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            PeriodicTimer(sim, 1.0, lambda: None, jitter=0.5).start()

    def test_jitter_must_be_smaller_than_interval(self):
        sim = Simulator()
        rng = RngStreams(0).stream("timer.jitter")
        with pytest.raises(SimulationError):
            PeriodicTimer(
                sim, 1.0, lambda: None, jitter=1.0, rng=rng
            ).start()
        with pytest.raises(SimulationError):
            PeriodicTimer(
                sim, 1.0, lambda: None, jitter=-0.1, rng=rng
            ).start()

    def test_zero_jitter_keeps_exact_period(self):
        sim = Simulator()
        times = []
        PeriodicTimer(sim, 2.0, lambda: times.append(sim.now)).start()
        sim.run(until=7.0)
        assert times == [2.0, 4.0, 6.0]
