"""Tests for the command-line interface."""

import json
import os
import time

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_configure_defaults(self):
        args = build_parser().parse_args(["configure"])
        assert args.command == "configure"
        assert args.ideal_radius == 100.0

    def test_global_options(self):
        args = build_parser().parse_args(
            ["--seed", "7", "--nodes", "500", "configure"]
        )
        assert args.seed == 7
        assert args.nodes == 500

    def test_heal_choices(self):
        args = build_parser().parse_args(
            ["heal", "--perturbation", "corruption"]
        )
        assert args.perturbation == "corruption"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["heal", "--perturbation", "nope"])

    def test_sweep_defaults(self):
        args = build_parser().parse_args(["sweep", "scenario.json"])
        assert args.command == "sweep"
        assert args.replicates == 8
        assert args.workers is None
        assert args.chunk_size is None
        assert args.base_seed is None

    def test_sweep_options(self):
        args = build_parser().parse_args(
            [
                "sweep",
                "s.json",
                "--replicates",
                "4",
                "--workers",
                "0",
                "--chunk-size",
                "2",
                "--base-seed",
                "9",
            ]
        )
        assert args.replicates == 4
        assert args.workers == 0
        assert args.chunk_size == 2
        assert args.base_seed == 9

    def test_chaos_defaults(self):
        args = build_parser().parse_args(["chaos", "campaign.json"])
        assert args.command == "chaos"
        assert args.campaigns == 8
        assert args.budget is None
        assert args.workers is None
        assert args.base_seed is None

    def test_chaos_options(self):
        args = build_parser().parse_args(
            [
                "chaos",
                "c.json",
                "--campaigns",
                "3",
                "--budget",
                "5000",
                "--workers",
                "0",
                "--base-seed",
                "9",
            ]
        )
        assert args.campaigns == 3
        assert args.budget == 5000.0
        assert args.workers == 0
        assert args.base_seed == 9


class TestCommands:
    COMMON = ["--nodes", "600", "--field-radius", "250"]

    def test_figures(self, capsys):
        assert main(["figures"]) == 0
        out = capsys.readouterr().out
        assert "fig7" in out
        assert "fig8" in out

    def test_configure(self, capsys):
        code = main(["--seed", "5", *self.COMMON, "configure"])
        out = capsys.readouterr().out
        assert code == 0
        assert "cells" in out
        assert "fixpoint violations" in out

    def test_configure_with_svg(self, tmp_path, capsys):
        svg_path = tmp_path / "out.svg"
        code = main(
            ["--seed", "5", *self.COMMON, "configure", "--svg", str(svg_path)]
        )
        assert code == 0
        assert svg_path.exists()
        assert "<svg" in svg_path.read_text()

    def test_configure_with_map(self, capsys):
        code = main(["--seed", "5", *self.COMMON, "configure", "--map"])
        out = capsys.readouterr().out
        assert code == 0
        assert "#" in out

    def test_heal_head_kill(self, capsys):
        code = main(["--seed", "5", *self.COMMON, "heal"])
        out = capsys.readouterr().out
        assert code == 0
        assert "healing time" in out

    def test_sweep(self, tmp_path, capsys):
        scenario_path = tmp_path / "scenario.json"
        scenario_path.write_text(
            json.dumps(
                {
                    "seed": 5,
                    "config": {
                        "ideal_radius": 100.0,
                        "radius_tolerance": 25.0,
                    },
                    "deployment": {
                        "kind": "uniform",
                        "field_radius": 220.0,
                        "n_nodes": 500,
                    },
                    "perturbations": [],
                    "settle_window": 100.0,
                }
            )
        )
        report_path = tmp_path / "report.json"
        code = main(
            [
                "sweep",
                str(scenario_path),
                "--replicates",
                "2",
                "--workers",
                "0",
                "--json",
                str(report_path),
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "2 replicates" in out
        assert "2/2 healthy" in out
        report = json.loads(report_path.read_text())
        assert len(report["replicates"]) == 2
        # Distinct derived seeds per replicate.
        seeds = [r["seed"] for r in report["replicates"]]
        assert len(set(seeds)) == 2

    def test_sweep_crash_exits_2(self, tmp_path, capsys):
        """A replicate traceback must surface as exit code 2, not as a
        quietly 'unhealthy' run."""
        scenario_path = tmp_path / "crash.json"
        scenario_path.write_text(
            json.dumps(
                {
                    "seed": 5,
                    "deployment": {
                        "kind": "uniform",
                        "field_radius": 60.0,
                        "n_nodes": 0,  # big node only
                    },
                    # kill_head needs a non-big head; there is none.
                    "perturbations": [{"kind": "kill_head", "at": 10.0}],
                    "settle_window": 30.0,
                }
            )
        )
        code = main(
            ["sweep", str(scenario_path), "--replicates", "2", "--workers", "0"]
        )
        out = capsys.readouterr().out
        assert code == 2
        assert "2 crashed" in out
        assert "needs a non-big head" in out

    def test_chaos(self, tmp_path, capsys):
        campaign_path = tmp_path / "campaign.json"
        campaign_path.write_text(
            json.dumps(
                {
                    "seed": 5,
                    "config": {
                        "ideal_radius": 100.0,
                        "radius_tolerance": 25.0,
                    },
                    "deployment": {
                        "kind": "uniform",
                        "field_radius": 130.0,
                        "n_nodes": 160,
                    },
                    "chaos": {
                        "duration": 200.0,
                        "kill_rate": 0.005,
                        "settle_window": 80.0,
                    },
                }
            )
        )
        report_path = tmp_path / "verdicts.json"
        code = main(
            [
                "chaos",
                str(campaign_path),
                "--campaigns",
                "2",
                "--workers",
                "0",
                "--json",
                str(report_path),
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "2 campaigns" in out
        assert "2/2 healed" in out
        report = json.loads(report_path.read_text())
        assert report["summary"]["healed"] == 2
        assert report["summary"]["crashed"] == 0
        assert len(report["verdicts"]) == 2
        assert {v["seed"] for v in report["verdicts"]} != {5}

    def test_chaos_budget_override_can_convict(self, tmp_path, capsys):
        """An absurdly small healing budget forces a timeout verdict and
        exit code 1 (ran fine, did not heal)."""
        campaign_path = tmp_path / "campaign.json"
        campaign_path.write_text(
            json.dumps(
                {
                    "seed": 5,
                    "config": {
                        "ideal_radius": 100.0,
                        "radius_tolerance": 25.0,
                    },
                    "deployment": {
                        "kind": "uniform",
                        "field_radius": 130.0,
                        "n_nodes": 160,
                    },
                    "chaos": {
                        "duration": 200.0,
                        "kill_rate": 0.02,
                        # A jam window outlasting the chaos phase defers
                        # healing past the (tiny) budget below.
                        "jam_rate": 0.01,
                        "jam_radius": 50.0,
                        "jam_duration": 120.0,
                        "settle_window": 80.0,
                    },
                }
            )
        )
        code = main(
            [
                "chaos",
                str(campaign_path),
                "--campaigns",
                "1",
                "--workers",
                "0",
                "--budget",
                "1.0",
            ]
        )
        out = capsys.readouterr().out
        assert code == 1
        assert "TIMEOUT" in out


class TestStoreAndReplayParser:
    def test_sweep_store_flags(self):
        args = build_parser().parse_args(
            ["sweep", "s.json", "--store", "runs", "--resume",
             "--retries", "2"]
        )
        assert args.store == "runs"
        assert args.resume is True
        assert args.retries == 2

    def test_store_flags_default_off(self):
        for command in ("sweep", "chaos"):
            args = build_parser().parse_args([command, "x.json"])
            assert args.store is None
            assert args.resume is False
            assert args.retries == 0

    def test_replay_requires_at(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["replay", "s.json"])
        args = build_parser().parse_args(
            ["replay", "s.json", "--at", "450", "--replay-seed", "7"]
        )
        assert args.at == 450.0
        assert args.replay_seed == 7

    def test_bisect_options(self):
        args = build_parser().parse_args(
            ["bisect", "s.json", "--predicate", "partition",
             "--t-max", "960", "--tol", "2"]
        )
        assert args.predicate == "partition"
        assert args.t_max == 960.0
        assert args.tol == 2.0
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["bisect", "s.json", "--predicate", "nope", "--t-max", "10"]
            )


class TestStoreAndReplayCommands:
    TINY = {
        "seed": 3,
        "config": {"ideal_radius": 100.0, "radius_tolerance": 25.0},
        "deployment": {
            "kind": "uniform",
            "field_radius": 160.0,
            "n_nodes": 80,
        },
        "perturbations": [{"kind": "kill_head", "at": 400.0}],
        "settle_window": 60.0,
    }

    def _scenario_file(self, tmp_path):
        path = tmp_path / "scenario.json"
        path.write_text(json.dumps(self.TINY))
        return path

    def test_sweep_resume_is_byte_identical(self, tmp_path, capsys):
        scenario_path = self._scenario_file(tmp_path)
        store = tmp_path / "runs"
        reports = []
        for name, extra in (("a.json", []), ("b.json", ["--resume"])):
            report = tmp_path / name
            code = main(
                [
                    "sweep",
                    str(scenario_path),
                    "--replicates",
                    "2",
                    "--workers",
                    "0",
                    "--store",
                    str(store),
                    "--json",
                    str(report),
                    *extra,
                ]
            )
            assert code == 0
            reports.append(report.read_bytes())
        out = capsys.readouterr().out
        assert "cached: 0/2" in out
        assert "cached: 2/2" in out
        assert reports[0] == reports[1]
        report = json.loads(reports[1])
        assert report["provenance"]["kind"] == "sweep"
        assert report["provenance"]["base_seed"] == 3
        assert len(report["provenance"]["scenario_digest"]) == 64

    def test_replay_prints_digest(self, tmp_path, capsys):
        scenario_path = self._scenario_file(tmp_path)
        report_path = tmp_path / "replay.json"
        code = main(
            [
                "replay",
                str(scenario_path),
                "--at",
                "450",
                "--json",
                str(report_path),
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "state_digest" in out
        report = json.loads(report_path.read_text())
        assert report["time"] == 450.0
        assert report["completed"] is False
        assert len(report["state_digest"]) == 64

    def test_bisect_without_onset_exits_1(self, tmp_path, capsys):
        scenario_path = self._scenario_file(tmp_path)
        # The healthy TINY run never partitions: no onset, exit 1.
        code = main(
            [
                "bisect",
                str(scenario_path),
                "--predicate",
                "partition",
                "--t-max",
                "100",
            ]
        )
        out = capsys.readouterr().out
        assert code == 1
        assert "never true" in out


class TestSupervisedExecutionFlags:
    def test_sweep_and_chaos_accept_the_supervise_flags(self):
        for command in ("sweep", "chaos"):
            args = build_parser().parse_args(
                [
                    command,
                    "s.json",
                    "--infra-chaos",
                    "kill@1,stall@3:1",
                    "--task-deadline",
                    "30",
                    "--infra-retries",
                    "3",
                ]
            )
            assert args.infra_chaos == "kill@1,stall@3:1"
            assert args.task_deadline == 30.0
            assert args.infra_retries == 3

    def test_supervise_flags_default_off(self):
        for command in ("sweep", "chaos"):
            args = build_parser().parse_args([command, "x.json"])
            assert args.infra_chaos is None
            assert args.task_deadline is None
            assert args.infra_retries is None

    def test_store_gc_older_than_flag(self):
        args = build_parser().parse_args(
            ["store", "gc", "runs", "--older-than", "7d", "--dry-run"]
        )
        assert args.older_than == "7d"
        assert args.dry_run is True


class TestSupervisedExecution:
    def _scenario(self, tmp_path):
        scenario_path = tmp_path / "scenario.json"
        scenario_path.write_text(
            json.dumps(
                {
                    "seed": 5,
                    "config": {
                        "ideal_radius": 100.0,
                        "radius_tolerance": 25.0,
                    },
                    "deployment": {
                        "kind": "uniform",
                        "field_radius": 220.0,
                        "n_nodes": 500,
                    },
                    "perturbations": [],
                    "settle_window": 100.0,
                }
            )
        )
        return scenario_path

    def test_surviving_a_killed_worker_is_byte_identical(
        self, tmp_path, capsys
    ):
        """The acceptance criterion: a sweep that loses a worker to
        SIGKILL finishes with a report byte-identical to the clean run."""
        scenario_path = self._scenario(tmp_path)
        clean_path = tmp_path / "clean.json"
        code = main(
            [
                "sweep",
                str(scenario_path),
                "--replicates",
                "2",
                "--workers",
                "2",
                "--json",
                str(clean_path),
            ]
        )
        assert code == 0
        capsys.readouterr()
        chaos_path = tmp_path / "chaos.json"
        code = main(
            [
                "sweep",
                str(scenario_path),
                "--replicates",
                "2",
                "--workers",
                "2",
                "--infra-chaos",
                "kill@0",
                "--json",
                str(chaos_path),
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "infra: 1 worker death(s)" in out
        assert chaos_path.read_bytes() == clean_path.read_bytes()

    def test_infra_chaos_without_a_process_backend_exits_2(
        self, tmp_path, capsys
    ):
        scenario_path = self._scenario(tmp_path)
        code = main(
            [
                "sweep",
                str(scenario_path),
                "--replicates",
                "1",
                "--workers",
                "0",
                "--infra-chaos",
                "kill@0",
            ]
        )
        out = capsys.readouterr().out
        assert code == 2
        assert "needs a process backend" in out

    def test_bad_infra_chaos_spec_exits_2(self, tmp_path, capsys):
        scenario_path = self._scenario(tmp_path)
        code = main(
            [
                "sweep",
                str(scenario_path),
                "--replicates",
                "1",
                "--workers",
                "1",
                "--infra-chaos",
                "explode@9",
            ]
        )
        out = capsys.readouterr().out
        assert code == 2
        assert "unknown infra fault" in out


class TestStoreExpiryCli:
    def _populated_store(self, tmp_path):
        from repro.sim import RunStore, StoredRecord

        store_dir = tmp_path / "runs"
        store = RunStore(store_dir)
        store.register_run("stale", "sweep", "scn")
        store.append("stale", StoredRecord(seed=1, ok=True, result=1))
        store.update_run("stale", 1)
        old = time.time() - 3600.0
        for path in store.run_dir("stale").glob("shard-*.jsonl"):
            os.utime(path, (old, old))
        return store_dir

    def test_gc_older_than_expires(self, tmp_path, capsys):
        from repro.sim import RunStore

        store_dir = self._populated_store(tmp_path)
        code = main(
            ["store", "gc", str(store_dir), "--older-than", "30m"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "expired 1 run(s) older than 30m" in out
        assert "stale" not in RunStore(store_dir).runs()

    def test_gc_older_than_dry_run_keeps_everything(self, tmp_path, capsys):
        from repro.sim import RunStore

        store_dir = self._populated_store(tmp_path)
        code = main(
            [
                "store",
                "gc",
                str(store_dir),
                "--older-than",
                "30m",
                "--dry-run",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "would expire 1 run(s)" in out
        assert "stale" in RunStore(store_dir).runs()

    def test_gc_bad_age_exits_2(self, tmp_path, capsys):
        store_dir = self._populated_store(tmp_path)
        code = main(
            ["store", "gc", str(store_dir), "--older-than", "soon"]
        )
        out = capsys.readouterr().out
        assert code == 2
        assert "bad age" in out
