"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_configure_defaults(self):
        args = build_parser().parse_args(["configure"])
        assert args.command == "configure"
        assert args.ideal_radius == 100.0

    def test_global_options(self):
        args = build_parser().parse_args(
            ["--seed", "7", "--nodes", "500", "configure"]
        )
        assert args.seed == 7
        assert args.nodes == 500

    def test_heal_choices(self):
        args = build_parser().parse_args(
            ["heal", "--perturbation", "corruption"]
        )
        assert args.perturbation == "corruption"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["heal", "--perturbation", "nope"])

    def test_sweep_defaults(self):
        args = build_parser().parse_args(["sweep", "scenario.json"])
        assert args.command == "sweep"
        assert args.replicates == 8
        assert args.workers is None
        assert args.chunk_size is None
        assert args.base_seed is None

    def test_sweep_options(self):
        args = build_parser().parse_args(
            [
                "sweep",
                "s.json",
                "--replicates",
                "4",
                "--workers",
                "0",
                "--chunk-size",
                "2",
                "--base-seed",
                "9",
            ]
        )
        assert args.replicates == 4
        assert args.workers == 0
        assert args.chunk_size == 2
        assert args.base_seed == 9


class TestCommands:
    COMMON = ["--nodes", "600", "--field-radius", "250"]

    def test_figures(self, capsys):
        assert main(["figures"]) == 0
        out = capsys.readouterr().out
        assert "fig7" in out
        assert "fig8" in out

    def test_configure(self, capsys):
        code = main(["--seed", "5", *self.COMMON, "configure"])
        out = capsys.readouterr().out
        assert code == 0
        assert "cells" in out
        assert "fixpoint violations" in out

    def test_configure_with_svg(self, tmp_path, capsys):
        svg_path = tmp_path / "out.svg"
        code = main(
            ["--seed", "5", *self.COMMON, "configure", "--svg", str(svg_path)]
        )
        assert code == 0
        assert svg_path.exists()
        assert "<svg" in svg_path.read_text()

    def test_configure_with_map(self, capsys):
        code = main(["--seed", "5", *self.COMMON, "configure", "--map"])
        out = capsys.readouterr().out
        assert code == 0
        assert "#" in out

    def test_heal_head_kill(self, capsys):
        code = main(["--seed", "5", *self.COMMON, "heal"])
        out = capsys.readouterr().out
        assert code == 0
        assert "healing time" in out

    def test_sweep(self, tmp_path, capsys):
        scenario_path = tmp_path / "scenario.json"
        scenario_path.write_text(
            json.dumps(
                {
                    "seed": 5,
                    "config": {
                        "ideal_radius": 100.0,
                        "radius_tolerance": 25.0,
                    },
                    "deployment": {
                        "kind": "uniform",
                        "field_radius": 220.0,
                        "n_nodes": 500,
                    },
                    "perturbations": [],
                    "settle_window": 100.0,
                }
            )
        )
        report_path = tmp_path / "report.json"
        code = main(
            [
                "sweep",
                str(scenario_path),
                "--replicates",
                "2",
                "--workers",
                "0",
                "--json",
                str(report_path),
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "2 replicates" in out
        assert "2/2 healthy" in out
        report = json.loads(report_path.read_text())
        assert len(report["replicates"]) == 2
        # Distinct derived seeds per replicate.
        seeds = [r["seed"] for r in report["replicates"]]
        assert len(set(seeds)) == 2
