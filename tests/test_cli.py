"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_configure_defaults(self):
        args = build_parser().parse_args(["configure"])
        assert args.command == "configure"
        assert args.ideal_radius == 100.0

    def test_global_options(self):
        args = build_parser().parse_args(
            ["--seed", "7", "--nodes", "500", "configure"]
        )
        assert args.seed == 7
        assert args.nodes == 500

    def test_heal_choices(self):
        args = build_parser().parse_args(
            ["heal", "--perturbation", "corruption"]
        )
        assert args.perturbation == "corruption"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["heal", "--perturbation", "nope"])


class TestCommands:
    COMMON = ["--nodes", "600", "--field-radius", "250"]

    def test_figures(self, capsys):
        assert main(["figures"]) == 0
        out = capsys.readouterr().out
        assert "fig7" in out
        assert "fig8" in out

    def test_configure(self, capsys):
        code = main(["--seed", "5", *self.COMMON, "configure"])
        out = capsys.readouterr().out
        assert code == 0
        assert "cells" in out
        assert "fixpoint violations" in out

    def test_configure_with_svg(self, tmp_path, capsys):
        svg_path = tmp_path / "out.svg"
        code = main(
            ["--seed", "5", *self.COMMON, "configure", "--svg", str(svg_path)]
        )
        assert code == 0
        assert svg_path.exists()
        assert "<svg" in svg_path.read_text()

    def test_configure_with_map(self, capsys):
        code = main(["--seed", "5", *self.COMMON, "configure", "--map"])
        out = capsys.readouterr().out
        assert code == 0
        assert "#" in out

    def test_heal_head_kill(self, capsys):
        code = main(["--seed", "5", *self.COMMON, "heal"])
        out = capsys.readouterr().out
        assert code == 0
        assert "healing time" in out
