"""End-to-end integration tests across the whole stack.

These tests drive realistic multi-perturbation scenarios through the
public API — deployment -> protocol -> perturbation workload ->
analysis — and assert global health properties rather than single
mechanisms.
"""

import math

import pytest

from repro import (
    EnergyConfig,
    GS3Config,
    Gs3DynamicSimulation,
    Gs3MobileNode,
    NodeStatus,
    uniform_disk,
)
from repro.analysis import (
    snapshot_to_clusters,
    structure_quality,
)
from repro.baselines import LeachClustering, LeachConfig, hop_clustering
from repro.core import check_i1_tree, check_static_invariant
from repro.geometry import Vec2
from repro.perturb import PerturbationInjector, churn_workload
from repro.sim import RngStreams

CFG = GS3Config(ideal_radius=100.0, radius_tolerance=25.0)


class TestChurnScenario:
    @pytest.mark.slow
    def test_structure_survives_sustained_churn(self):
        deployment = uniform_disk(230.0, 620, RngStreams(71))
        sim = Gs3DynamicSimulation.from_deployment(deployment, CFG, seed=71)
        sim.run_until_stable(window=60.0, max_time=5000.0)
        initial_heads = len(sim.snapshot().heads)

        events = churn_workload(
            node_ids=sim.network.node_ids(),
            field_radius=260.0,
            rng_streams=RngStreams(72),
            start=sim.now + 10.0,
            end=sim.now + 1000.0,
            join_rate=0.004,
            leave_rate=0.004,
            corruption_rate=0.0005,
        )
        assert events
        PerturbationInjector(sim).schedule(events)
        sim.run_for(1100.0)
        # Let the tail of the churn heal out.
        sim.run_until_stable(window=150.0, max_time=sim.now + 30000.0)
        snapshot = sim.snapshot()
        assert check_i1_tree(snapshot) == []
        assert len(snapshot.heads) >= 0.7 * initial_heads
        # Everyone alive ends up classified.
        assert len(snapshot.bootup_ids) == 0

    def test_message_traffic_is_bounded(self):
        # Steady-state control traffic stays proportional to node count
        # (heartbeats), not quadratic.
        deployment = uniform_disk(210.0, 500, RngStreams(73))
        sim = Gs3DynamicSimulation.from_deployment(
            deployment, CFG, seed=73, keep_trace_records=False
        )
        sim.run_until_stable(window=60.0, max_time=5000.0)
        start_msgs = sim.tracer.count_prefix("msg.")
        duration = 500.0
        sim.run_for(duration)
        per_node_per_beat = (
            (sim.tracer.count_prefix("msg.") - start_msgs)
            / (duration / CFG.heartbeat_interval)
            / len(sim.network)
        )
        # Each node sends/receives a bounded number of messages per
        # heartbeat (broadcast receptions dominate).
        assert per_node_per_beat < 60.0


class TestFullStackComparison:
    def test_gs3_beats_baselines_on_radius_tightness(self):
        deployment = uniform_disk(260.0, 850, RngStreams(74))
        # GS3
        sim = Gs3DynamicSimulation.from_deployment(deployment, CFG, seed=74)
        sim.run_until_stable(window=60.0, max_time=5000.0)
        gs3 = structure_quality(snapshot_to_clusters(sim.snapshot()))
        # LEACH with matched head count
        import random

        positions = {
            i: p for i, p in enumerate(deployment.all_positions())
        }
        fraction = gs3.head_count / len(positions)
        leach = LeachClustering(
            positions, LeachConfig(fraction), random.Random(74)
        )
        leach_quality = structure_quality(leach.run_round())
        assert gs3.radius.stddev < leach_quality.radius.stddev
        assert gs3.overlap < leach_quality.overlap

    def test_gs3_radius_implies_hop_bound(self):
        # Paper Section 6: the geographic radius bound implies a bound
        # on logical radius (all members one hop from the head under
        # the recommended radio range), but not vice versa.
        deployment = uniform_disk(260.0, 850, RngStreams(75))
        sim = Gs3DynamicSimulation.from_deployment(deployment, CFG, seed=75)
        sim.run_until_stable(window=60.0, max_time=5000.0)
        snapshot = sim.snapshot()
        for head_id, members in snapshot.cells.items():
            head = snapshot.heads[head_id]
            for member in members:
                distance = snapshot.views[member].position.distance_to(
                    head.position
                )
                assert distance <= CFG.recommended_max_range


class TestMobileScenario:
    @pytest.mark.slow
    def test_patrolling_big_node_keeps_tree_rooted(self):
        deployment = uniform_disk(250.0, 700, RngStreams(76))
        sim = Gs3DynamicSimulation.from_deployment(
            deployment, CFG, seed=76, node_class=Gs3MobileNode
        )
        sim.run_until_stable(window=60.0, max_time=5000.0)
        big = sim.network.big_id
        spacing = CFG.lattice_spacing
        for waypoint in (Vec2(spacing, 0), Vec2(spacing, spacing)):
            sim.move_node(big, waypoint)
            sim.run_until_stable(window=150.0, max_time=sim.now + 40000.0)
            snapshot = sim.snapshot()
            assert len(snapshot.roots) == 1
            assert check_i1_tree(snapshot) == []

    @pytest.mark.slow
    def test_energy_plus_mobility(self):
        # The heaviest combination: energy-driven deaths while the big
        # node wanders.  The tree must stay rooted and healing local.
        deployment = uniform_disk(210.0, 520, RngStreams(77))
        sim = Gs3DynamicSimulation.from_deployment(
            deployment, CFG, seed=77, node_class=Gs3MobileNode
        )
        sim.run_until_stable(window=60.0, max_time=5000.0)
        sim.attach_energy(
            EnergyConfig(
                initial=3000.0,
                head_drain=8.0,
                candidate_drain=0.4,
                associate_drain=0.2,
            )
        )
        big = sim.network.big_id
        sim.run_for(600.0)
        sim.move_node(big, Vec2(CFG.lattice_spacing, 0))
        sim.run_for(800.0)
        sim.detach_energy()
        sim.run_until_stable(window=150.0, max_time=sim.now + 40000.0)
        snapshot = sim.snapshot()
        assert len(snapshot.roots) == 1
        assert check_i1_tree(snapshot) == []
        assert len(snapshot.heads) >= 4
